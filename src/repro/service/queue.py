"""A durable, crash-safe on-disk job queue for the simulation service.

Every job is one JSON file whose *directory* encodes its state::

    <root>/service.json           {"schema": 1}
    <root>/jobs/queued/<id>.json
    <root>/jobs/running/<id>.json
    <root>/jobs/done/<id>.json
    <root>/jobs/failed/<id>.json
    <root>/jobs/cancelled/<id>.json
    <root>/jobs/cancel-requests/<id>.cancel   cancel marker for a running job
    <root>/results/<id>.json      result payload of completed jobs
    <root>/events/<nonce>.submit  one empty file per submit call
    <root>/events/archived.json   count of pruned submit events
    <root>/daemons/<id>.json      per-daemon heartbeat + counters (the lease clock)
    <root>/sockets/<id>.sock      per-daemon Unix socket (low-latency transport)
    <root>/daemon.json            most recent heartbeat (legacy single-daemon alias)

Durability rules mirror the result store's:

* **State transitions are single renames.**  Claiming a job is one
  ``os.replace(queued/x, running/x)`` — atomic on POSIX, and it *fails* for
  every claimant but one, so concurrent claimants (including claimants in
  different daemon processes) can never double-claim.  Completing, failing
  and cancelling are the same primitive.
* **Claims are leased.**  A claim records the claiming daemon's id and a
  lease expiry; the daemon renews the lease simply by writing its heartbeat
  file (``daemons/<id>.json``).  :meth:`JobQueue.recover` therefore
  distinguishes a crashed daemon's stranded jobs (dead pid, stale
  heartbeat, or expired lease — reclaimed) from a live peer's in-progress
  ones (fresh heartbeat — left alone), which is what makes running N
  daemons against one service directory safe.
* **Record rewrites are atomic.**  Progress updates go through the shared
  temp-file-plus-rename writer, so a kill mid-update leaves the previous
  consistent record, never a truncated one.
* **A crash is recoverable by construction.**  A daemon killed mid-job
  leaves the record under ``running/``; :meth:`JobQueue.recover` moves it
  back to ``queued`` on the next startup, and because execution is
  store-backed the re-run pays only for cells that were not yet persisted.
* **Results are written before the state flips to done**, so observing
  ``done`` guarantees the result payload exists.

Submission is *idempotent*: the job id is the canonical content identity of
the request (see :meth:`repro.service.api.SweepRequest.canonical_job_id` —
derived from the same trace fingerprint and store-key digests the result
store addresses artifacts by), so duplicate submissions — concurrent ones
included — collapse onto one queue entry.  Each submit call additionally
drops a uniquely-named event file, which is how the dedup ratio survives
restarts without any shared mutable counter.
"""

from __future__ import annotations

import json
import os
import socket as _socketmod
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.obs.metrics import get_registry
from repro.store.resultstore import _atomic_replace

#: Version of the service directory layout and job record schema.
SERVICE_SCHEMA_VERSION = 1

#: Job lifecycle states; each is a sub-directory of ``jobs/``.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
JOB_STATES: Tuple[str, ...] = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_FAILED,
    STATE_CANCELLED,
)

#: States a job can never leave (their results/errors are final).
TERMINAL_STATES: Tuple[str, ...] = (STATE_DONE, STATE_CANCELLED)

_SERVICE_MANIFEST = "service.json"
_JOBS_DIR = "jobs"
_RESULTS_DIR = "results"
_EVENTS_DIR = "events"
_RECORD_SUFFIX = ".json"

#: Summary file the event pruner folds removed submit events into, so the
#: all-time submission count (and thus the dedup ratio) survives pruning.
_EVENTS_ARCHIVE = "archived.json"

#: Directory of cancel-request markers for *running* jobs: one empty
#: ``<id>.cancel`` file per requested cancellation, dropped by clients and
#: honored by the daemon between cells.
_CANCEL_DIR = "cancel-requests"
_CANCEL_SUFFIX = ".cancel"

#: Default retain window for submit-event files.  Events older than this
#: carry no information beyond their count (which the archive preserves),
#: so pruning them caps the directory at the last day's submission rate.
DEFAULT_EVENT_RETAIN_SECONDS = 86_400.0

#: Per-daemon heartbeat files (``<root>/daemons/<daemon_id>.json``) — the
#: fleet's liveness registry and the lease-renewal clock.
_DAEMONS_DIR = "daemons"

#: Per-daemon Unix-domain sockets (``<root>/sockets/<daemon_id>.sock``).
_SOCKETS_DIR = "sockets"

#: How long a claimed job stays owned without a heartbeat renewal before
#: another daemon's recovery may reclaim it.  Must comfortably exceed the
#: daemon's heartbeat cadence (one write per scheduler tick).
DEFAULT_LEASE_SECONDS = 30.0

#: Default retention for finished/failed/cancelled job records and their
#: result payloads (``queue gc``): one week.
DEFAULT_JOB_RETAIN_SECONDS = 7 * 86_400.0


def _local_host() -> str:
    """This machine's name, as recorded in heartbeats for pid-probe scoping."""
    try:
        return _socketmod.gethostname()
    except OSError:  # pragma: no cover - hostname lookup failure
        return ""


@dataclass
class JobRecord:
    """One sweep job's durable bookkeeping (the JSON file's contents)."""

    id: str
    request: Dict[str, Any]
    state: str = STATE_QUEUED
    priority: int = 0
    sequence: int = 0
    attempts: int = 0
    cells_total: int = 0
    cells_done: int = 0
    cells_cached: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    execute_seconds: float = 0.0
    error: Optional[str] = None
    daemon_id: Optional[str] = None
    lease_expires_at: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (the exact on-disk representation)."""
        return {
            "schema": SERVICE_SCHEMA_VERSION,
            "id": self.id,
            "request": self.request,
            "state": self.state,
            "priority": self.priority,
            "sequence": self.sequence,
            "attempts": self.attempts,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cells_cached": self.cells_cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "execute_seconds": self.execute_seconds,
            "error": self.error,
            "daemon_id": self.daemon_id,
            "lease_expires_at": self.lease_expires_at,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        if payload.get("schema") != SERVICE_SCHEMA_VERSION:
            raise ServiceError(
                f"job record uses schema {payload.get('schema')!r}; "
                f"this build reads version {SERVICE_SCHEMA_VERSION}"
            )
        return cls(
            id=str(payload["id"]),
            request=dict(payload.get("request", {})),
            state=str(payload.get("state", STATE_QUEUED)),
            priority=int(payload.get("priority", 0)),
            sequence=int(payload.get("sequence", 0)),
            attempts=int(payload.get("attempts", 0)),
            cells_total=int(payload.get("cells_total", 0)),
            cells_done=int(payload.get("cells_done", 0)),
            cells_cached=int(payload.get("cells_cached", 0)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            error=payload.get("error"),
            daemon_id=payload.get("daemon_id"),
            lease_expires_at=payload.get("lease_expires_at"),
            extra=dict(payload.get("extra", {})),
        )


def _claim_order_key(record: JobRecord) -> Tuple[int, int, str]:
    """Higher priority first, then submission order, then id (deterministic)."""
    return (-record.priority, record.sequence, record.id)


class JobQueue:
    """The durable queue rooted at one service directory.

    Construct via :func:`open_service`.  All mutating operations are atomic
    renames or atomic rewrites; see the module docstring for the crash
    semantics each one guarantees.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        registry = get_registry()
        self._metric_submitted = registry.counter(
            "queue_submitted_total", help="Jobs enqueued (fresh or retried)."
        )
        self._metric_deduped = registry.counter(
            "queue_deduped_total", help="Submissions coalesced onto a live job."
        )
        self._metric_claimed = registry.counter(
            "queue_claimed_total", help="Successful job claims."
        )
        self._metric_completed = registry.counter(
            "queue_completed_total", help="Jobs finished as done."
        )
        self._metric_failed = registry.counter(
            "queue_failed_total", help="Jobs finished as failed."
        )
        self._metric_cancelled = registry.counter(
            "queue_cancelled_total", help="Jobs finished as cancelled."
        )
        self._metric_recovered = registry.counter(
            "queue_recovered_total", help="Stranded running jobs re-queued."
        )
        self._metric_claim_latency = registry.histogram(
            "queue_claim_latency_seconds",
            help="Seconds between job submission and a winning claim.",
        )

    # -- paths -------------------------------------------------------------------

    def _state_dir(self, state: str) -> Path:
        if state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r}")
        return self.root / _JOBS_DIR / state

    def _record_path(self, state: str, job_id: str) -> Path:
        return self._state_dir(state) / (job_id + _RECORD_SUFFIX)

    def result_path(self, job_id: str) -> Path:
        """Where a completed job's result payload lives."""
        return self.root / _RESULTS_DIR / (job_id + _RECORD_SUFFIX)

    # -- record I/O --------------------------------------------------------------

    def _write_record(self, state: str, record: JobRecord) -> None:
        record.state = state
        path = self._record_path(state, record.id)
        _atomic_replace(
            path,
            lambda handle: json.dump(record.to_dict(), handle, sort_keys=True),
            mode="w",
            prefix=".tmp-job-",
        )

    def _read_record(self, path: Path) -> Optional[JobRecord]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            return JobRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        job_id: str,
        request: Dict[str, Any],
        priority: int = 0,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue (or coalesce onto) the job identified by ``job_id``.

        Returns ``(record, deduped)``: ``deduped`` is True when an
        equivalent job already existed in a live state (queued, running or
        done) and no new work was enqueued.  A job found ``failed`` or
        ``cancelled`` is re-queued — resubmission is the retry mechanism.
        Every call drops one submission event for dedup accounting.
        """
        self._record_event()
        existing = self._locate(job_id)
        if existing is not None:
            state, record = existing
            if state in (STATE_QUEUED, STATE_RUNNING, STATE_DONE):
                self._metric_deduped.inc()
                return record, True
            # failed/cancelled -> retry: move back onto the queue.
            record.error = None
            record.started_at = None
            record.finished_at = None
            record.cells_done = 0
            record.cells_cached = 0
            record.priority = max(record.priority, int(priority))
            self._write_record(STATE_QUEUED, record)
            self._transition(state, STATE_QUEUED, job_id, rewritten=True)
            # A resubmission is an explicit retry: a cancel marker left by
            # an earlier life of this job must not insta-cancel the new run.
            self.clear_cancel_request(job_id)
            self._metric_submitted.inc()
            return record, False
        record = JobRecord(
            id=job_id,
            request=dict(request),
            priority=int(priority),
            sequence=time.time_ns(),
            submitted_at=time.time(),
        )
        self._write_record(STATE_QUEUED, record)
        self._metric_submitted.inc()
        return record, False

    def _record_event(self) -> None:
        events = self.root / _EVENTS_DIR
        # pid + monotonic nonce make the name unique across processes.
        nonce = f"{os.getpid()}-{time.time_ns()}"
        path = events / (nonce + ".submit")
        try:
            with open(path, "x", encoding="ascii") as handle:
                handle.write("")
        except FileExistsError:  # pragma: no cover - same-ns double submit
            pass
        except OSError as exc:
            raise ServiceError(f"could not record submission event: {exc}") from exc

    # -- lookup ------------------------------------------------------------------

    def _locate(self, job_id: str) -> Optional[Tuple[str, JobRecord]]:
        for state in JOB_STATES:
            path = self._record_path(state, job_id)
            if path.is_file():
                record = self._read_record(path)
                if record is not None:
                    return state, record
        return None

    def find(self, job_id_or_prefix: str) -> JobRecord:
        """The record whose id is (or starts with) the given string.

        Prefixes are accepted for the same copy-paste ergonomics as
        ``store ls`` fingerprints; an unknown or ambiguous prefix raises
        :class:`~repro.errors.ServiceError`.
        """
        token = str(job_id_or_prefix).strip()
        if not token:
            raise ServiceError("empty job id")
        exact = self._locate(token)
        if exact is not None:
            return exact[1]
        matches = [
            record for record in self.records() if record.id.startswith(token)
        ]
        if not matches:
            raise ServiceError(f"no job matches {token!r}")
        if len(matches) > 1:
            listing = ", ".join(sorted(record.id[:12] for record in matches))
            raise ServiceError(f"job id prefix {token!r} is ambiguous: {listing}")
        return matches[0]

    def records(self, state: Optional[str] = None) -> List[JobRecord]:
        """All job records (optionally of one state), in claim order."""
        states = (state,) if state is not None else JOB_STATES
        records: List[JobRecord] = []
        for name in states:
            directory = self._state_dir(name)
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*" + _RECORD_SUFFIX)):
                record = self._read_record(path)
                if record is not None:
                    records.append(record)
        records.sort(key=_claim_order_key)
        return records

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state."""
        result = {}
        for state in JOB_STATES:
            directory = self._state_dir(state)
            result[state] = (
                sum(1 for _ in directory.glob("*" + _RECORD_SUFFIX))
                if directory.is_dir()
                else 0
            )
        return result

    def submissions(self) -> int:
        """Total submit calls observed (survives restarts; drives dedup ratio).

        Live event files plus the count folded into the archive by
        :meth:`prune_events`, so the all-time total is unaffected by pruning.
        """
        events = self.root / _EVENTS_DIR
        if not events.is_dir():
            return 0
        return sum(1 for _ in events.glob("*.submit")) + self._archived_events()

    def _archived_events(self) -> int:
        path = self.root / _EVENTS_DIR / _EVENTS_ARCHIVE
        try:
            payload = json.loads(path.read_text(encoding="ascii"))
            return max(int(payload.get("count", 0)), 0)
        except (OSError, ValueError, TypeError):
            return 0

    def prune_events(
        self,
        retain_seconds: float = DEFAULT_EVENT_RETAIN_SECONDS,
        now: Optional[float] = None,
    ) -> int:
        """Delete submit-event files older than ``retain_seconds``.

        Every submit call drops one empty event file forever, so a
        long-lived service accumulates unbounded directory entries; this
        folds the stale ones into a single archived count (preserving
        :meth:`submissions` exactly) and removes the files.  Returns the
        number pruned.  Wired into daemon startup recovery and
        ``repro-dew queue stats --prune-events``; concurrent pruners are
        safe (a file the other pruner already removed is simply skipped,
        and the archive rewrite is atomic).  A crash between deleting and
        archiving can under-count stale submissions — an accounting blip
        in a stats counter, never in job state.
        """
        events = self.root / _EVENTS_DIR
        if not events.is_dir():
            return 0
        cutoff = (time.time() if now is None else float(now)) - max(
            float(retain_seconds), 0.0
        )
        pruned = 0
        for path in events.glob("*.submit"):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # raced with a concurrent pruner (or unreadable)
            pruned += 1
        if pruned:
            total = self._archived_events() + pruned
            _atomic_replace(
                events / _EVENTS_ARCHIVE,
                lambda handle: json.dump(
                    {"schema": 1, "count": total}, handle, sort_keys=True
                ),
                mode="w",
                prefix=".tmp-events-",
            )
        return pruned

    # -- transitions -------------------------------------------------------------

    def _transition(
        self, source: str, target: str, job_id: str, rewritten: bool = False
    ) -> None:
        """Atomically move a job file between state directories.

        With ``rewritten=True`` the target file has already been written and
        the rename just removes the stale source copy — a source that is
        already gone (a concurrent actor performed the same transition, e.g.
        two clients resubmitting the same failed job) is therefore not an
        error: the desired end state holds either way.
        """
        source_path = self._record_path(source, job_id)
        target_path = self._record_path(target, job_id)
        try:
            if rewritten:
                source_path.unlink()
            else:
                os.replace(source_path, target_path)
        except FileNotFoundError:
            if rewritten:
                return
            raise ServiceError(
                f"job {job_id[:12]} left state {source!r} concurrently"
            ) from None

    def claim(
        self,
        accept: Optional[Callable[[JobRecord], bool]] = None,
        daemon_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> Optional[JobRecord]:
        """Atomically claim the best queued job, or ``None`` when idle.

        Queued jobs are considered in (priority desc, submission order)
        sequence; ``accept`` lets the caller skip jobs it cannot run yet
        (the daemon uses it to defer jobs whose cells overlap work already
        in flight).  The claim itself is one ``os.replace`` — if another
        claimant (thread or daemon process) wins the race, the next
        candidate is tried, so any number of daemons can drain one queue
        and a job is only ever executed by exactly one of them.

        ``daemon_id`` records ownership on the running record, and the
        claim carries a lease expiring ``lease_seconds`` from now.  The
        expiry written here is only the *fallback* deadline: as long as the
        owner keeps writing its heartbeat file the lease is considered
        renewed (see :meth:`lease_deadline`), so progress rewrites of the
        record never race a renewal.
        """
        for record in self.records(STATE_QUEUED):
            if accept is not None and not accept(record):
                continue
            source = self._record_path(STATE_QUEUED, record.id)
            target = self._record_path(STATE_RUNNING, record.id)
            try:
                os.replace(source, target)
            except FileNotFoundError:
                continue  # lost the race; try the next candidate
            record.attempts += 1
            record.started_at = time.time()
            record.error = None
            record.daemon_id = daemon_id
            record.lease_expires_at = record.started_at + max(float(lease_seconds), 0.0)
            self._write_record(STATE_RUNNING, record)
            self._metric_claimed.inc()
            if record.submitted_at:
                self._metric_claim_latency.observe(
                    max(record.started_at - record.submitted_at, 0.0)
                )
            return record
        return None

    def update_running(self, record: JobRecord) -> None:
        """Atomically rewrite a running job's record (progress updates)."""
        if record.state != STATE_RUNNING:
            raise ServiceError(
                f"can only update running jobs, {record.id[:12]} is {record.state!r}"
            )
        self._write_record(STATE_RUNNING, record)

    def complete(self, record: JobRecord, result_text: str) -> None:
        """Persist the result payload, then flip the job to ``done``.

        The payload write happens first (atomically), so a record observed
        in ``done`` always has a readable result.
        """
        payload_path = self.result_path(record.id)
        _atomic_replace(
            payload_path,
            lambda handle: handle.write(result_text),
            mode="w",
            prefix=".tmp-result-",
        )
        record.finished_at = time.time()
        self._write_record(STATE_DONE, record)
        self._transition(STATE_RUNNING, STATE_DONE, record.id, rewritten=True)
        self.clear_cancel_request(record.id)
        self._metric_completed.inc()

    def fail(self, record: JobRecord, error: str) -> None:
        """Flip a running job to ``failed`` with the error message."""
        record.error = str(error)
        record.finished_at = time.time()
        self._write_record(STATE_FAILED, record)
        self._transition(STATE_RUNNING, STATE_FAILED, record.id, rewritten=True)
        self.clear_cancel_request(record.id)
        self._metric_failed.inc()

    def cancel(self, job_id_or_prefix: str) -> JobRecord:
        """Cancel a job: atomic rename for waiting states, a request for running.

        Queued and failed jobs flip straight to ``cancelled`` (an atomic
        rename; failed jobs are cancellable to stop a resubmission from
        retrying them).  A *running* job is owned by the daemon, so
        cancelling it drops a durable cancel-request marker instead — the
        daemon checks it between cells (see
        :meth:`~repro.service.daemon.ServiceDaemon` and
        :class:`~repro.errors.SweepAborted`) and finishes the job as
        ``cancelled``, keeping every cell already persisted.  The returned
        record still reads ``running`` in that case; callers distinguish
        the two outcomes by state.  Done and cancelled jobs are final.
        """
        record = self.find(job_id_or_prefix)
        if record.state in (STATE_QUEUED, STATE_FAILED):
            source_state = record.state
            record.finished_at = time.time()
            self._write_record(STATE_CANCELLED, record)
            self._transition(source_state, STATE_CANCELLED, record.id, rewritten=True)
            self._metric_cancelled.inc()
            return record
        if record.state == STATE_RUNNING:
            self.request_cancel(record.id)
            return record
        raise ServiceError(f"job {record.id[:12]} is already {record.state}")

    # -- running-job cancellation ------------------------------------------------

    def _cancel_request_path(self, job_id: str) -> Path:
        return self.root / _JOBS_DIR / _CANCEL_DIR / (job_id + _CANCEL_SUFFIX)

    def request_cancel(self, job_id: str) -> None:
        """Durably ask the daemon to stop the given job between cells."""
        path = self._cancel_request_path(job_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="ascii") as handle:
                handle.write("")
        except OSError as exc:
            raise ServiceError(
                f"could not record cancel request for {job_id[:12]}: {exc}"
            ) from exc

    def cancel_requested(self, job_id: str) -> bool:
        """Whether a cancel-request marker exists for the job."""
        return self._cancel_request_path(job_id).is_file()

    def clear_cancel_request(self, job_id: str) -> None:
        """Remove the job's cancel-request marker, if any."""
        try:
            self._cancel_request_path(job_id).unlink()
        except OSError:
            pass

    def cancel_running(self, record: JobRecord) -> None:
        """Finish a running job as ``cancelled`` (the daemon's side of
        :meth:`request_cancel`); clears the marker so a later resubmission
        of the same request starts clean."""
        record.finished_at = time.time()
        self._write_record(STATE_CANCELLED, record)
        self._transition(STATE_RUNNING, STATE_CANCELLED, record.id, rewritten=True)
        self.clear_cancel_request(record.id)
        self._metric_cancelled.inc()

    # -- fleet liveness ----------------------------------------------------------

    def daemons_dir(self) -> Path:
        """Directory of per-daemon heartbeat files."""
        return self.root / _DAEMONS_DIR

    def sockets_dir(self) -> Path:
        """Directory of per-daemon Unix-domain sockets."""
        return self.root / _SOCKETS_DIR

    def heartbeat_path(self, daemon_id: str) -> Path:
        """Where the given daemon's heartbeat file lives."""
        return self.daemons_dir() / (str(daemon_id) + _RECORD_SUFFIX)

    def daemon_heartbeats(self) -> Dict[str, Dict[str, Any]]:
        """Every daemon's last heartbeat payload, keyed by daemon id.

        Unreadable files are skipped (a heartbeat mid-rewrite is unreadable
        for at most one atomic rename).  Includes dead daemons' final
        heartbeats — liveness is the *reader's* judgement, via
        :meth:`live_daemons` or :meth:`lease_deadline`.
        """
        directory = self.daemons_dir()
        heartbeats: Dict[str, Dict[str, Any]] = {}
        if not directory.is_dir():
            return heartbeats
        for path in sorted(directory.glob("*" + _RECORD_SUFFIX)):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                heartbeats[path.stem] = payload
        return heartbeats

    @staticmethod
    def _heartbeat_alive(
        payload: Dict[str, Any], lease_seconds: float, now: float
    ) -> bool:
        """Whether a heartbeat payload attests a live daemon.

        Fresh heartbeat -> alive.  A heartbeat from *this* host whose pid no
        longer exists -> dead regardless of freshness, which is what lets a
        restart (or a surviving peer) reclaim a SIGKILLed daemon's jobs
        immediately instead of waiting out the lease.
        """
        try:
            updated_at = float(payload.get("updated_at", 0.0))
        except (TypeError, ValueError):
            return False
        if now - updated_at >= max(float(lease_seconds), 0.0):
            return False
        return not JobQueue._heartbeat_pid_dead(payload)

    @staticmethod
    def _heartbeat_pid_dead(payload: Dict[str, Any]) -> bool:
        """Whether the heartbeat's pid provably no longer exists.

        Only a same-host ``ProcessLookupError`` counts: other hosts cannot
        be probed, and ``EPERM`` means the process exists under another
        user.  A true result is the strongest death evidence there is — the
        owner cannot possibly still be executing its jobs.
        """
        pid = payload.get("pid")
        host = payload.get("host")
        if isinstance(pid, int) and (host is None or host == _local_host()):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                pass
        return False

    def live_daemons(
        self,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        now: Optional[float] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Heartbeats of daemons currently considered alive."""
        moment = time.time() if now is None else float(now)
        return {
            daemon_id: payload
            for daemon_id, payload in self.daemon_heartbeats().items()
            if self._heartbeat_alive(payload, lease_seconds, moment)
        }

    def lease_deadline(
        self,
        record: JobRecord,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        heartbeats: Optional[Dict[str, Dict[str, Any]]] = None,
        now: Optional[float] = None,
    ) -> float:
        """The moment ``record``'s claim lease runs out.

        The lease is renewed by the owner's heartbeat: the deadline is the
        later of the claim-time expiry written on the record and (last
        heartbeat + ``lease_seconds``).  An owner whose pid is provably dead
        on this host forfeits the lease immediately; a record with no owner
        id at all (pre-lease records, or direct :meth:`claim` calls without
        a daemon id) has only its claim-time expiry, defaulting to 0 —
        i.e. immediately reclaimable, the pre-fleet behaviour.
        """
        moment = time.time() if now is None else float(now)
        deadline = float(record.lease_expires_at or 0.0)
        if not record.daemon_id:
            return deadline
        payload = (
            heartbeats if heartbeats is not None else self.daemon_heartbeats()
        ).get(record.daemon_id)
        if payload is None:
            return deadline
        if not self._heartbeat_alive(payload, lease_seconds, moment):
            if self._heartbeat_pid_dead(payload):
                # A provably-dead owner forfeits immediately — this is what
                # lets a survivor reclaim a SIGKILLed peer's jobs without
                # waiting out the lease.
                return 0.0
            # Stale heartbeat: only the shorter of the claim-time expiry
            # and the last renewal holds.
            try:
                updated_at = float(payload.get("updated_at", 0.0))
            except (TypeError, ValueError):
                updated_at = 0.0
            return min(deadline, updated_at + max(float(lease_seconds), 0.0))
        try:
            updated_at = float(payload.get("updated_at", 0.0))
        except (TypeError, ValueError):
            updated_at = 0.0
        return max(deadline, updated_at + max(float(lease_seconds), 0.0))

    def recover(
        self,
        daemon_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        reclaim_own: bool = True,
        now: Optional[float] = None,
    ) -> List[JobRecord]:
        """Re-queue running jobs stranded by dead daemons; spare live peers.

        Called by every daemon at startup and periodically afterwards.  A
        running record is reclaimed when its owner is provably gone:

        * it carries no owner id (legacy records, or a claim that died
          between the rename and the record rewrite);
        * it is owned by *this* daemon id and ``reclaim_own`` is true — a
          daemon's own id appearing at startup means a previous life of the
          same daemon died mid-job (periodic recovery passes
          ``reclaim_own=False`` so it never steals its own live work);
        * its lease has run out (see :meth:`lease_deadline`: stale or
          absent heartbeat past the claim expiry, or a dead pid).

        Jobs whose owner still holds a live lease are left alone — that is
        the property that makes an N-daemon fleet safe.  Progress counters
        of reclaimed jobs are reset (the store, not the record, is the
        source of truth for completed cells — the re-run loads persisted
        cells instead of re-simulating them).
        """
        moment = time.time() if now is None else float(now)
        heartbeats = self.daemon_heartbeats()
        recovered = []
        for record in self.records(STATE_RUNNING):
            owner = record.daemon_id
            if owner and daemon_id and owner == daemon_id:
                if not reclaim_own:
                    continue
            elif owner:
                deadline = self.lease_deadline(
                    record, lease_seconds, heartbeats=heartbeats, now=moment
                )
                if moment < deadline:
                    continue  # a live peer is executing this job
            record.cells_done = 0
            record.cells_cached = 0
            record.daemon_id = None
            record.lease_expires_at = None
            self._write_record(STATE_QUEUED, record)
            self._transition(STATE_RUNNING, STATE_QUEUED, record.id, rewritten=True)
            recovered.append(record)
        if recovered:
            self._metric_recovered.inc(len(recovered))
        return recovered

    # -- retention ---------------------------------------------------------------

    def gc(
        self,
        retain_seconds: float = DEFAULT_JOB_RETAIN_SECONDS,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Evict finished job records (and their payloads) past retention.

        Jobs in a terminal-or-failed state whose ``finished_at`` (falling
        back to the record file's mtime) is older than ``retain_seconds``
        are deleted, together with their result payloads and any stale
        cancel markers.  Queued and running jobs are never touched.  Returns
        counts per state plus ``results`` (payload files), ``bytes``
        (total reclaimed) and ``kept`` (finished jobs inside the window);
        with ``dry_run=True`` nothing is deleted and the same counts
        describe what *would* go.
        """
        cutoff = (time.time() if now is None else float(now)) - max(
            float(retain_seconds), 0.0
        )
        report = {state: 0 for state in (STATE_DONE, STATE_FAILED, STATE_CANCELLED)}
        report["results"] = 0
        report["bytes"] = 0
        report["kept"] = 0
        for state in (STATE_DONE, STATE_FAILED, STATE_CANCELLED):
            directory = self._state_dir(state)
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*" + _RECORD_SUFFIX)):
                record = self._read_record(path)
                try:
                    size = path.stat().st_size
                    finished = (
                        float(record.finished_at)
                        if record is not None and record.finished_at
                        else path.stat().st_mtime
                    )
                except OSError:
                    continue  # raced with a concurrent collector
                if finished >= cutoff:
                    report["kept"] += 1
                    continue
                job_id = record.id if record is not None else path.stem
                result_path = self.result_path(job_id)
                try:
                    result_size = result_path.stat().st_size
                except OSError:
                    result_size = None
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        continue  # another collector won this record
                    if result_size is not None:
                        try:
                            result_path.unlink()
                        except OSError:
                            result_size = None
                    self.clear_cancel_request(job_id)
                report[state] += 1
                report["bytes"] += size
                if result_size is not None:
                    report["results"] += 1
                    report["bytes"] += result_size
        return report

    def result_text(self, job_id_or_prefix: str) -> str:
        """The stored result payload of a completed job."""
        record = self.find(job_id_or_prefix)
        if record.state != STATE_DONE:
            raise ServiceError(
                f"job {record.id[:12]} is {record.state}, not done"
                + (f" ({record.error})" if record.error else "")
            )
        try:
            return self.result_path(record.id).read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - done implies payload
            raise ServiceError(
                f"result payload for job {record.id[:12]} is unreadable: {exc}"
            ) from exc


def open_service(path: Union[str, os.PathLike], create: bool = True) -> JobQueue:
    """Open (by default creating) the service directory rooted at ``path``.

    The root gains a ``service.json`` manifest recording the schema
    version; re-opening a directory written by an incompatible build raises
    :class:`~repro.errors.ServiceError`.  With ``create=False`` a missing
    service directory is an error — the client commands use this so a typo
    cannot silently spawn an empty service.
    """
    root = Path(path)
    manifest_path = root / _SERVICE_MANIFEST
    if not manifest_path.is_file():
        if not create:
            raise ServiceError(
                f"no service at {root} (start one with 'repro-dew serve {root}')"
            )
        try:
            for name in JOB_STATES:
                (root / _JOBS_DIR / name).mkdir(parents=True, exist_ok=True)
            (root / _JOBS_DIR / _CANCEL_DIR).mkdir(parents=True, exist_ok=True)
            (root / _RESULTS_DIR).mkdir(parents=True, exist_ok=True)
            (root / _EVENTS_DIR).mkdir(parents=True, exist_ok=True)
            (root / _DAEMONS_DIR).mkdir(parents=True, exist_ok=True)
            (root / _SOCKETS_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServiceError(f"could not create service at {root}: {exc}") from exc
        _atomic_replace(
            manifest_path,
            lambda handle: json.dump(
                {"schema": SERVICE_SCHEMA_VERSION, "format": "polling-files"},
                handle,
                sort_keys=True,
            ),
            mode="w",
            prefix=".tmp-service-",
        )
    else:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"unreadable service manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != SERVICE_SCHEMA_VERSION:
            raise ServiceError(
                f"service at {root} uses schema {manifest.get('schema')!r}; "
                f"this build reads version {SERVICE_SCHEMA_VERSION}"
            )
        for name in JOB_STATES:
            (root / _JOBS_DIR / name).mkdir(parents=True, exist_ok=True)
        (root / _JOBS_DIR / _CANCEL_DIR).mkdir(parents=True, exist_ok=True)
        (root / _RESULTS_DIR).mkdir(parents=True, exist_ok=True)
        (root / _EVENTS_DIR).mkdir(parents=True, exist_ok=True)
        (root / _DAEMONS_DIR).mkdir(parents=True, exist_ok=True)
        (root / _SOCKETS_DIR).mkdir(parents=True, exist_ok=True)
    return JobQueue(root)
