"""A durable, crash-safe on-disk job queue for the simulation service.

Every job is one JSON file whose *directory* encodes its state::

    <root>/service.json           {"schema": 1}
    <root>/jobs/queued/<id>.json
    <root>/jobs/running/<id>.json
    <root>/jobs/done/<id>.json
    <root>/jobs/failed/<id>.json
    <root>/jobs/cancelled/<id>.json
    <root>/jobs/cancel-requests/<id>.cancel   cancel marker for a running job
    <root>/results/<id>.json      result payload of completed jobs
    <root>/events/<nonce>.submit  one empty file per submit call
    <root>/events/archived.json   count of pruned submit events
    <root>/daemon.json            daemon heartbeat + counters

Durability rules mirror the result store's:

* **State transitions are single renames.**  Claiming a job is one
  ``os.replace(queued/x, running/x)`` — atomic on POSIX, and it *fails* for
  every claimant but one, so concurrent claimants can never double-claim.
  Completing, failing and cancelling are the same primitive.  (Run one
  daemon per service directory regardless: a second daemon's *startup
  recovery* cannot tell a crashed predecessor's stranded jobs from a live
  daemon's in-progress ones — see :meth:`JobQueue.recover`.)
* **Record rewrites are atomic.**  Progress updates go through the shared
  temp-file-plus-rename writer, so a kill mid-update leaves the previous
  consistent record, never a truncated one.
* **A crash is recoverable by construction.**  A daemon killed mid-job
  leaves the record under ``running/``; :meth:`JobQueue.recover` moves it
  back to ``queued`` on the next startup, and because execution is
  store-backed the re-run pays only for cells that were not yet persisted.
* **Results are written before the state flips to done**, so observing
  ``done`` guarantees the result payload exists.

Submission is *idempotent*: the job id is the canonical content identity of
the request (see :meth:`repro.service.api.SweepRequest.canonical_job_id` —
derived from the same trace fingerprint and store-key digests the result
store addresses artifacts by), so duplicate submissions — concurrent ones
included — collapse onto one queue entry.  Each submit call additionally
drops a uniquely-named event file, which is how the dedup ratio survives
restarts without any shared mutable counter.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError
from repro.store.resultstore import _atomic_replace

#: Version of the service directory layout and job record schema.
SERVICE_SCHEMA_VERSION = 1

#: Job lifecycle states; each is a sub-directory of ``jobs/``.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
JOB_STATES: Tuple[str, ...] = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_FAILED,
    STATE_CANCELLED,
)

#: States a job can never leave (their results/errors are final).
TERMINAL_STATES: Tuple[str, ...] = (STATE_DONE, STATE_CANCELLED)

_SERVICE_MANIFEST = "service.json"
_JOBS_DIR = "jobs"
_RESULTS_DIR = "results"
_EVENTS_DIR = "events"
_RECORD_SUFFIX = ".json"

#: Summary file the event pruner folds removed submit events into, so the
#: all-time submission count (and thus the dedup ratio) survives pruning.
_EVENTS_ARCHIVE = "archived.json"

#: Directory of cancel-request markers for *running* jobs: one empty
#: ``<id>.cancel`` file per requested cancellation, dropped by clients and
#: honored by the daemon between cells.
_CANCEL_DIR = "cancel-requests"
_CANCEL_SUFFIX = ".cancel"

#: Default retain window for submit-event files.  Events older than this
#: carry no information beyond their count (which the archive preserves),
#: so pruning them caps the directory at the last day's submission rate.
DEFAULT_EVENT_RETAIN_SECONDS = 86_400.0


@dataclass
class JobRecord:
    """One sweep job's durable bookkeeping (the JSON file's contents)."""

    id: str
    request: Dict[str, Any]
    state: str = STATE_QUEUED
    priority: int = 0
    sequence: int = 0
    attempts: int = 0
    cells_total: int = 0
    cells_done: int = 0
    cells_cached: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    execute_seconds: float = 0.0
    error: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (the exact on-disk representation)."""
        return {
            "schema": SERVICE_SCHEMA_VERSION,
            "id": self.id,
            "request": self.request,
            "state": self.state,
            "priority": self.priority,
            "sequence": self.sequence,
            "attempts": self.attempts,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cells_cached": self.cells_cached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "execute_seconds": self.execute_seconds,
            "error": self.error,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        if payload.get("schema") != SERVICE_SCHEMA_VERSION:
            raise ServiceError(
                f"job record uses schema {payload.get('schema')!r}; "
                f"this build reads version {SERVICE_SCHEMA_VERSION}"
            )
        return cls(
            id=str(payload["id"]),
            request=dict(payload.get("request", {})),
            state=str(payload.get("state", STATE_QUEUED)),
            priority=int(payload.get("priority", 0)),
            sequence=int(payload.get("sequence", 0)),
            attempts=int(payload.get("attempts", 0)),
            cells_total=int(payload.get("cells_total", 0)),
            cells_done=int(payload.get("cells_done", 0)),
            cells_cached=int(payload.get("cells_cached", 0)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            execute_seconds=float(payload.get("execute_seconds", 0.0)),
            error=payload.get("error"),
            extra=dict(payload.get("extra", {})),
        )


def _claim_order_key(record: JobRecord) -> Tuple[int, int, str]:
    """Higher priority first, then submission order, then id (deterministic)."""
    return (-record.priority, record.sequence, record.id)


class JobQueue:
    """The durable queue rooted at one service directory.

    Construct via :func:`open_service`.  All mutating operations are atomic
    renames or atomic rewrites; see the module docstring for the crash
    semantics each one guarantees.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------------

    def _state_dir(self, state: str) -> Path:
        if state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r}")
        return self.root / _JOBS_DIR / state

    def _record_path(self, state: str, job_id: str) -> Path:
        return self._state_dir(state) / (job_id + _RECORD_SUFFIX)

    def result_path(self, job_id: str) -> Path:
        """Where a completed job's result payload lives."""
        return self.root / _RESULTS_DIR / (job_id + _RECORD_SUFFIX)

    # -- record I/O --------------------------------------------------------------

    def _write_record(self, state: str, record: JobRecord) -> None:
        record.state = state
        path = self._record_path(state, record.id)
        _atomic_replace(
            path,
            lambda handle: json.dump(record.to_dict(), handle, sort_keys=True),
            mode="w",
            prefix=".tmp-job-",
        )

    def _read_record(self, path: Path) -> Optional[JobRecord]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            return JobRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        job_id: str,
        request: Dict[str, Any],
        priority: int = 0,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue (or coalesce onto) the job identified by ``job_id``.

        Returns ``(record, deduped)``: ``deduped`` is True when an
        equivalent job already existed in a live state (queued, running or
        done) and no new work was enqueued.  A job found ``failed`` or
        ``cancelled`` is re-queued — resubmission is the retry mechanism.
        Every call drops one submission event for dedup accounting.
        """
        self._record_event()
        existing = self._locate(job_id)
        if existing is not None:
            state, record = existing
            if state in (STATE_QUEUED, STATE_RUNNING, STATE_DONE):
                return record, True
            # failed/cancelled -> retry: move back onto the queue.
            record.error = None
            record.started_at = None
            record.finished_at = None
            record.cells_done = 0
            record.cells_cached = 0
            record.priority = max(record.priority, int(priority))
            self._write_record(STATE_QUEUED, record)
            self._transition(state, STATE_QUEUED, job_id, rewritten=True)
            # A resubmission is an explicit retry: a cancel marker left by
            # an earlier life of this job must not insta-cancel the new run.
            self.clear_cancel_request(job_id)
            return record, False
        record = JobRecord(
            id=job_id,
            request=dict(request),
            priority=int(priority),
            sequence=time.time_ns(),
            submitted_at=time.time(),
        )
        self._write_record(STATE_QUEUED, record)
        return record, False

    def _record_event(self) -> None:
        events = self.root / _EVENTS_DIR
        # pid + monotonic nonce make the name unique across processes.
        nonce = f"{os.getpid()}-{time.time_ns()}"
        path = events / (nonce + ".submit")
        try:
            with open(path, "x", encoding="ascii") as handle:
                handle.write("")
        except FileExistsError:  # pragma: no cover - same-ns double submit
            pass
        except OSError as exc:
            raise ServiceError(f"could not record submission event: {exc}") from exc

    # -- lookup ------------------------------------------------------------------

    def _locate(self, job_id: str) -> Optional[Tuple[str, JobRecord]]:
        for state in JOB_STATES:
            path = self._record_path(state, job_id)
            if path.is_file():
                record = self._read_record(path)
                if record is not None:
                    return state, record
        return None

    def find(self, job_id_or_prefix: str) -> JobRecord:
        """The record whose id is (or starts with) the given string.

        Prefixes are accepted for the same copy-paste ergonomics as
        ``store ls`` fingerprints; an unknown or ambiguous prefix raises
        :class:`~repro.errors.ServiceError`.
        """
        token = str(job_id_or_prefix).strip()
        if not token:
            raise ServiceError("empty job id")
        exact = self._locate(token)
        if exact is not None:
            return exact[1]
        matches = [
            record for record in self.records() if record.id.startswith(token)
        ]
        if not matches:
            raise ServiceError(f"no job matches {token!r}")
        if len(matches) > 1:
            listing = ", ".join(sorted(record.id[:12] for record in matches))
            raise ServiceError(f"job id prefix {token!r} is ambiguous: {listing}")
        return matches[0]

    def records(self, state: Optional[str] = None) -> List[JobRecord]:
        """All job records (optionally of one state), in claim order."""
        states = (state,) if state is not None else JOB_STATES
        records: List[JobRecord] = []
        for name in states:
            directory = self._state_dir(name)
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*" + _RECORD_SUFFIX)):
                record = self._read_record(path)
                if record is not None:
                    records.append(record)
        records.sort(key=_claim_order_key)
        return records

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state."""
        result = {}
        for state in JOB_STATES:
            directory = self._state_dir(state)
            result[state] = (
                sum(1 for _ in directory.glob("*" + _RECORD_SUFFIX))
                if directory.is_dir()
                else 0
            )
        return result

    def submissions(self) -> int:
        """Total submit calls observed (survives restarts; drives dedup ratio).

        Live event files plus the count folded into the archive by
        :meth:`prune_events`, so the all-time total is unaffected by pruning.
        """
        events = self.root / _EVENTS_DIR
        if not events.is_dir():
            return 0
        return sum(1 for _ in events.glob("*.submit")) + self._archived_events()

    def _archived_events(self) -> int:
        path = self.root / _EVENTS_DIR / _EVENTS_ARCHIVE
        try:
            payload = json.loads(path.read_text(encoding="ascii"))
            return max(int(payload.get("count", 0)), 0)
        except (OSError, ValueError, TypeError):
            return 0

    def prune_events(
        self,
        retain_seconds: float = DEFAULT_EVENT_RETAIN_SECONDS,
        now: Optional[float] = None,
    ) -> int:
        """Delete submit-event files older than ``retain_seconds``.

        Every submit call drops one empty event file forever, so a
        long-lived service accumulates unbounded directory entries; this
        folds the stale ones into a single archived count (preserving
        :meth:`submissions` exactly) and removes the files.  Returns the
        number pruned.  Wired into daemon startup recovery and
        ``repro-dew queue stats --prune-events``; concurrent pruners are
        safe (a file the other pruner already removed is simply skipped,
        and the archive rewrite is atomic).  A crash between deleting and
        archiving can under-count stale submissions — an accounting blip
        in a stats counter, never in job state.
        """
        events = self.root / _EVENTS_DIR
        if not events.is_dir():
            return 0
        cutoff = (time.time() if now is None else float(now)) - max(
            float(retain_seconds), 0.0
        )
        pruned = 0
        for path in events.glob("*.submit"):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # raced with a concurrent pruner (or unreadable)
            pruned += 1
        if pruned:
            total = self._archived_events() + pruned
            _atomic_replace(
                events / _EVENTS_ARCHIVE,
                lambda handle: json.dump(
                    {"schema": 1, "count": total}, handle, sort_keys=True
                ),
                mode="w",
                prefix=".tmp-events-",
            )
        return pruned

    # -- transitions -------------------------------------------------------------

    def _transition(
        self, source: str, target: str, job_id: str, rewritten: bool = False
    ) -> None:
        """Atomically move a job file between state directories.

        With ``rewritten=True`` the target file has already been written and
        the rename just removes the stale source copy — a source that is
        already gone (a concurrent actor performed the same transition, e.g.
        two clients resubmitting the same failed job) is therefore not an
        error: the desired end state holds either way.
        """
        source_path = self._record_path(source, job_id)
        target_path = self._record_path(target, job_id)
        try:
            if rewritten:
                source_path.unlink()
            else:
                os.replace(source_path, target_path)
        except FileNotFoundError:
            if rewritten:
                return
            raise ServiceError(
                f"job {job_id[:12]} left state {source!r} concurrently"
            ) from None

    def claim(
        self, accept: Optional[Callable[[JobRecord], bool]] = None
    ) -> Optional[JobRecord]:
        """Atomically claim the best queued job, or ``None`` when idle.

        Queued jobs are considered in (priority desc, submission order)
        sequence; ``accept`` lets the caller skip jobs it cannot run yet
        (the daemon uses it to defer jobs whose cells overlap work already
        in flight).  The claim itself is one ``os.replace`` — if another
        claimant wins the race, the next candidate is tried.
        """
        for record in self.records(STATE_QUEUED):
            if accept is not None and not accept(record):
                continue
            source = self._record_path(STATE_QUEUED, record.id)
            target = self._record_path(STATE_RUNNING, record.id)
            try:
                os.replace(source, target)
            except FileNotFoundError:
                continue  # lost the race; try the next candidate
            record.attempts += 1
            record.started_at = time.time()
            record.error = None
            self._write_record(STATE_RUNNING, record)
            return record
        return None

    def update_running(self, record: JobRecord) -> None:
        """Atomically rewrite a running job's record (progress updates)."""
        if record.state != STATE_RUNNING:
            raise ServiceError(
                f"can only update running jobs, {record.id[:12]} is {record.state!r}"
            )
        self._write_record(STATE_RUNNING, record)

    def complete(self, record: JobRecord, result_text: str) -> None:
        """Persist the result payload, then flip the job to ``done``.

        The payload write happens first (atomically), so a record observed
        in ``done`` always has a readable result.
        """
        payload_path = self.result_path(record.id)
        _atomic_replace(
            payload_path,
            lambda handle: handle.write(result_text),
            mode="w",
            prefix=".tmp-result-",
        )
        record.finished_at = time.time()
        self._write_record(STATE_DONE, record)
        self._transition(STATE_RUNNING, STATE_DONE, record.id, rewritten=True)
        self.clear_cancel_request(record.id)

    def fail(self, record: JobRecord, error: str) -> None:
        """Flip a running job to ``failed`` with the error message."""
        record.error = str(error)
        record.finished_at = time.time()
        self._write_record(STATE_FAILED, record)
        self._transition(STATE_RUNNING, STATE_FAILED, record.id, rewritten=True)
        self.clear_cancel_request(record.id)

    def cancel(self, job_id_or_prefix: str) -> JobRecord:
        """Cancel a job: atomic rename for waiting states, a request for running.

        Queued and failed jobs flip straight to ``cancelled`` (an atomic
        rename; failed jobs are cancellable to stop a resubmission from
        retrying them).  A *running* job is owned by the daemon, so
        cancelling it drops a durable cancel-request marker instead — the
        daemon checks it between cells (see
        :meth:`~repro.service.daemon.ServiceDaemon` and
        :class:`~repro.errors.SweepAborted`) and finishes the job as
        ``cancelled``, keeping every cell already persisted.  The returned
        record still reads ``running`` in that case; callers distinguish
        the two outcomes by state.  Done and cancelled jobs are final.
        """
        record = self.find(job_id_or_prefix)
        if record.state in (STATE_QUEUED, STATE_FAILED):
            source_state = record.state
            record.finished_at = time.time()
            self._write_record(STATE_CANCELLED, record)
            self._transition(source_state, STATE_CANCELLED, record.id, rewritten=True)
            return record
        if record.state == STATE_RUNNING:
            self.request_cancel(record.id)
            return record
        raise ServiceError(f"job {record.id[:12]} is already {record.state}")

    # -- running-job cancellation ------------------------------------------------

    def _cancel_request_path(self, job_id: str) -> Path:
        return self.root / _JOBS_DIR / _CANCEL_DIR / (job_id + _CANCEL_SUFFIX)

    def request_cancel(self, job_id: str) -> None:
        """Durably ask the daemon to stop the given job between cells."""
        path = self._cancel_request_path(job_id)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="ascii") as handle:
                handle.write("")
        except OSError as exc:
            raise ServiceError(
                f"could not record cancel request for {job_id[:12]}: {exc}"
            ) from exc

    def cancel_requested(self, job_id: str) -> bool:
        """Whether a cancel-request marker exists for the job."""
        return self._cancel_request_path(job_id).is_file()

    def clear_cancel_request(self, job_id: str) -> None:
        """Remove the job's cancel-request marker, if any."""
        try:
            self._cancel_request_path(job_id).unlink()
        except OSError:
            pass

    def cancel_running(self, record: JobRecord) -> None:
        """Finish a running job as ``cancelled`` (the daemon's side of
        :meth:`request_cancel`); clears the marker so a later resubmission
        of the same request starts clean."""
        record.finished_at = time.time()
        self._write_record(STATE_CANCELLED, record)
        self._transition(STATE_RUNNING, STATE_CANCELLED, record.id, rewritten=True)
        self.clear_cancel_request(record.id)

    def recover(self) -> List[JobRecord]:
        """Re-queue every job stranded in ``running`` by a dead daemon.

        Called by the daemon on startup.  Progress counters are reset (the
        store, not the record, is the source of truth for completed cells —
        the re-run loads persisted cells instead of re-simulating them).

        This assumes the previous daemon is dead: recovery cannot
        distinguish a stranded job from one a *live* daemon is still
        executing, so starting a second daemon on the same service
        directory re-queues (and re-runs) the first one's in-progress work.
        The store keeps that safe — results stay byte-identical and
        persisted cells are not re-simulated — but it is duplicate effort;
        run one daemon per service directory.
        """
        recovered = []
        for record in self.records(STATE_RUNNING):
            record.cells_done = 0
            record.cells_cached = 0
            self._write_record(STATE_QUEUED, record)
            self._transition(STATE_RUNNING, STATE_QUEUED, record.id, rewritten=True)
            recovered.append(record)
        return recovered

    def result_text(self, job_id_or_prefix: str) -> str:
        """The stored result payload of a completed job."""
        record = self.find(job_id_or_prefix)
        if record.state != STATE_DONE:
            raise ServiceError(
                f"job {record.id[:12]} is {record.state}, not done"
                + (f" ({record.error})" if record.error else "")
            )
        try:
            return self.result_path(record.id).read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - done implies payload
            raise ServiceError(
                f"result payload for job {record.id[:12]} is unreadable: {exc}"
            ) from exc


def open_service(path: Union[str, os.PathLike], create: bool = True) -> JobQueue:
    """Open (by default creating) the service directory rooted at ``path``.

    The root gains a ``service.json`` manifest recording the schema
    version; re-opening a directory written by an incompatible build raises
    :class:`~repro.errors.ServiceError`.  With ``create=False`` a missing
    service directory is an error — the client commands use this so a typo
    cannot silently spawn an empty service.
    """
    root = Path(path)
    manifest_path = root / _SERVICE_MANIFEST
    if not manifest_path.is_file():
        if not create:
            raise ServiceError(
                f"no service at {root} (start one with 'repro-dew serve {root}')"
            )
        try:
            for name in JOB_STATES:
                (root / _JOBS_DIR / name).mkdir(parents=True, exist_ok=True)
            (root / _JOBS_DIR / _CANCEL_DIR).mkdir(parents=True, exist_ok=True)
            (root / _RESULTS_DIR).mkdir(parents=True, exist_ok=True)
            (root / _EVENTS_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ServiceError(f"could not create service at {root}: {exc}") from exc
        _atomic_replace(
            manifest_path,
            lambda handle: json.dump(
                {"schema": SERVICE_SCHEMA_VERSION, "format": "polling-files"},
                handle,
                sort_keys=True,
            ),
            mode="w",
            prefix=".tmp-service-",
        )
    else:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"unreadable service manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != SERVICE_SCHEMA_VERSION:
            raise ServiceError(
                f"service at {root} uses schema {manifest.get('schema')!r}; "
                f"this build reads version {SERVICE_SCHEMA_VERSION}"
            )
        for name in JOB_STATES:
            (root / _JOBS_DIR / name).mkdir(parents=True, exist_ok=True)
        (root / _JOBS_DIR / _CANCEL_DIR).mkdir(parents=True, exist_ok=True)
        (root / _RESULTS_DIR).mkdir(parents=True, exist_ok=True)
        (root / _EVENTS_DIR).mkdir(parents=True, exist_ok=True)
    return JobQueue(root)
