"""JSON wire schema and the :class:`ServiceClient` (files + socket paths).

The baseline transport is *shared files*: clients and daemons operate on
one service directory (the :class:`~repro.service.queue.JobQueue` layout),
so a submit is an atomic enqueue, status is a record read, and waiting is
polling — no sockets, no extra dependencies, and every operation works
whether or not a daemon is currently alive (jobs queue up and are drained
when one starts).

When a daemon *is* alive, the client transparently upgrades to its
Unix-domain socket (see :mod:`repro.service.socketserver`): the same
operations become single round trips carrying the same JSON envelopes, and
``wait`` is woken by the daemon on completion instead of paying the polling
interval as a latency floor.  Transport choice is per-client
(``transport="auto" | "files" | "socket"``); ``auto`` falls back to files
on any socket failure, so the socket is purely an accelerator.

Every client operation has a JSON request/response shape so the CLI's
``--format json`` output is machine-consumable and stable:

* ``submit``  -> ``{"ok": true, "type": "submit", "job_id": ..., "deduped": ...}``
* ``status``  -> ``{"ok": true, "type": "status", "job": {...}}``
* ``result``  -> the job's result payload verbatim (the exact bytes
  ``repro-dew sweep --format json`` would print for the same grid)
* ``cancel``  -> ``{"ok": true, "type": "cancel", "job": {...}}``
* ``stats``   -> ``{"ok": true, "type": "stats", "queue": {...}, ...}``

Errors become ``{"ok": false, "error": "..."}`` with a non-zero exit code
at the CLI.

The canonical job identity reuses the store's content addressing: a request
is decomposed into the same :class:`~repro.engine.sweep.SweepJob` grid a
direct sweep would run, and the job id is the SHA-256 of the trace
fingerprint plus the sorted per-cell store-key digests.  Two requests that
would simulate the same cells over the same trace therefore collapse onto
one queue entry, no matter how their options were spelled.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.results import ResultsFrame
from repro.engine.sweep import SweepJob, build_grid_jobs, build_mechanism_grid_jobs
from repro.errors import ReproError, ServiceError
from repro.obs.metrics import merge_snapshots
from repro.obs.tracing import new_trace_id
from repro.service.queue import (
    DEFAULT_EVENT_RETAIN_SECONDS,
    DEFAULT_LEASE_SECONDS,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
    TERMINAL_STATES,
    JobQueue,
    JobRecord,
    open_service,
)
from repro.service.socketserver import SocketTransport, discover_socket
from repro.trace.files import load_trace_file
from repro.trace.trace import Trace

#: Version of the request/response wire format.
SERVICE_WIRE_VERSION = 1

#: Default sizes swept when a request does not pin ``max_sets``.
DEFAULT_MAX_SETS = 16384


def doubling_set_sizes(max_sets: int) -> List[int]:
    """The power-of-two set-size ladder ``1, 2, 4, ... <= max_sets``."""
    sizes = []
    size = 1
    while size <= int(max_sets):
        sizes.append(size)
        size *= 2
    return sizes


def ok_response(kind: str, **body: Any) -> Dict[str, Any]:
    """A successful wire response envelope."""
    payload: Dict[str, Any] = {"ok": True, "type": kind, "wire": SERVICE_WIRE_VERSION}
    payload.update(body)
    return payload


def error_response(error: Union[str, Exception]) -> Dict[str, Any]:
    """A failed wire response envelope."""
    return {"ok": False, "wire": SERVICE_WIRE_VERSION, "error": str(error)}


@dataclass(frozen=True)
class SweepRequest:
    """One client sweep request (the ``request`` field of a job record).

    The grid parameters mirror ``repro-dew sweep``'s; the request is
    decomposed into engine jobs with the same :func:`build_grid_jobs`
    call a direct sweep uses, which is what makes service results
    byte-identical to direct ones.
    """

    trace_path: str
    block_sizes: Tuple[int, ...] = (4, 16, 64)
    associativities: Tuple[int, ...] = (1, 4, 8)
    max_sets: int = DEFAULT_MAX_SETS
    policies: Tuple[str, ...] = ("fifo",)
    seed: int = 0
    mechanisms: Tuple[str, ...] = ()
    mechanism_entries: Tuple[int, ...] = (2, 4, 8, 16)
    stream_depth: int = 4

    def to_wire(self) -> Dict[str, Any]:
        """JSON-able request payload stored in the job record."""
        return {
            "wire": SERVICE_WIRE_VERSION,
            "trace_path": self.trace_path,
            "block_sizes": list(self.block_sizes),
            "associativities": list(self.associativities),
            "max_sets": self.max_sets,
            "policies": list(self.policies),
            "seed": self.seed,
            "mechanisms": list(self.mechanisms),
            "mechanism_entries": list(self.mechanism_entries),
            "stream_depth": self.stream_depth,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SweepRequest":
        """Inverse of :meth:`to_wire`.

        The mechanism fields read tolerantly (``.get`` with the dataclass
        defaults), so mechanism-free payloads written by older builds stay
        acceptable without a wire-version bump.
        """
        if payload.get("wire") != SERVICE_WIRE_VERSION:
            raise ServiceError(
                f"request uses wire version {payload.get('wire')!r}; "
                f"this build reads version {SERVICE_WIRE_VERSION}"
            )
        return cls(
            trace_path=str(payload["trace_path"]),
            block_sizes=tuple(int(b) for b in payload["block_sizes"]),
            associativities=tuple(int(a) for a in payload["associativities"]),
            max_sets=int(payload.get("max_sets", DEFAULT_MAX_SETS)),
            policies=tuple(str(p) for p in payload["policies"]),
            seed=int(payload.get("seed", 0)),
            mechanisms=tuple(str(m) for m in payload.get("mechanisms", ())),
            mechanism_entries=tuple(
                int(e) for e in payload.get("mechanism_entries", (2, 4, 8, 16))
            ),
            stream_depth=int(payload.get("stream_depth", 4)),
        )

    def build_jobs(self) -> List[SweepJob]:
        """The engine-job decomposition a direct sweep would execute."""
        jobs = build_grid_jobs(
            block_sizes=self.block_sizes,
            associativities=self.associativities,
            set_sizes=doubling_set_sizes(self.max_sets),
            policies=self.policies,
            seed=self.seed,
        )
        if self.mechanisms:
            jobs += build_mechanism_grid_jobs(
                self.mechanisms,
                block_sizes=self.block_sizes,
                associativities=self.associativities,
                set_sizes=doubling_set_sizes(self.max_sets),
                entry_counts=self.mechanism_entries,
                policies=self.policies,
                stream_depth=self.stream_depth,
                seed=self.seed,
            )
        return jobs

    def load_trace(self, cache: Optional[Any] = None) -> Trace:
        """Load the request's trace file.

        ``cache`` (a :class:`~repro.trace.planecache.TracePlaneCache`)
        enables the fingerprint sidecar, so a warm load skips the
        full-array hash — see :func:`~repro.trace.files.load_trace_file`.
        """
        return load_trace_file(self.trace_path, cache=cache)

    def cell_digests(self, trace_fingerprint: str) -> List[str]:
        """Sorted store-key digests of every cell this request covers."""
        return sorted(
            job.store_key(trace_fingerprint).digest for job in self.build_jobs()
        )

    def canonical_job_id(
        self,
        trace_fingerprint: str,
        cell_digests: Optional[List[str]] = None,
    ) -> str:
        """Content identity of this request: trace + cell store addresses.

        Requests that cover the same cells over the same trace — however
        their grids were spelled — share an id, which is what makes queue
        submission idempotent and duplicate submissions free.  Callers that
        already hold the digests (the submit path computes them once and
        persists them in the job record) pass them in to skip recomputing.
        """
        payload = json.dumps(
            {
                "schema": SERVICE_WIRE_VERSION,
                "trace": str(trace_fingerprint),
                "cells": (
                    sorted(cell_digests)
                    if cell_digests is not None
                    else self.cell_digests(trace_fingerprint)
                ),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()


def record_to_wire(record: JobRecord) -> Dict[str, Any]:
    """A job record as a wire-friendly dictionary."""
    return record.to_dict()


def _heartbeat_updated_at(payload: Dict[str, Any]) -> float:
    try:
        return float(payload.get("updated_at", 0.0) or 0.0)
    except (TypeError, ValueError):
        return 0.0


def service_stats(
    queue: JobQueue, lease_seconds: float = DEFAULT_LEASE_SECONDS
) -> Dict[str, Any]:
    """The fleet-aware ``stats`` response for one service directory.

    Shared by the polling client and the socket server so both transports
    report identical shapes.  ``daemons`` maps every daemon id that ever
    heartbeat to its last payload plus an ``alive`` judgement (fresh
    heartbeat, and on this host a live pid); ``daemon`` keeps the pre-fleet
    single-heartbeat field — the most recent heartbeat, falling back to the
    legacy ``daemon.json`` single-daemon file — so existing consumers keep
    working.
    """
    counts = queue.counts()
    submissions = queue.submissions()
    distinct = sum(counts.values())
    now = time.time()
    daemons: Dict[str, Dict[str, Any]] = {}
    for daemon_id, payload in sorted(queue.daemon_heartbeats().items()):
        entry = dict(payload)
        entry["alive"] = JobQueue._heartbeat_alive(payload, lease_seconds, now)
        daemons[daemon_id] = entry
    # Fleet-wide metrics: every daemon's heartbeat carries its process
    # registry snapshot; summing them (bucket-wise for histograms) gives
    # one view of the whole fleet's counters without touching any socket.
    fleet_metrics = merge_snapshots(
        [
            entry["metrics"]
            for entry in daemons.values()
            if isinstance(entry.get("metrics"), dict)
        ]
    )
    daemon: Optional[Dict[str, Any]] = None
    if daemons:
        daemon = max(daemons.values(), key=_heartbeat_updated_at)
    else:
        legacy_path = queue.root / "daemon.json"
        if legacy_path.is_file():
            try:
                daemon = json.loads(legacy_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                daemon = None
    return ok_response(
        "stats",
        queue=counts,
        submissions=submissions,
        distinct_jobs=distinct,
        coalesced_submissions=max(submissions - distinct, 0),
        dedup_ratio=(
            round(max(submissions - distinct, 0) / submissions, 6)
            if submissions
            else 0.0
        ),
        daemon=daemon,
        daemons=daemons,
        live_daemons=sum(1 for entry in daemons.values() if entry.get("alive")),
        fleet_metrics=fleet_metrics,
    )


def fleet_metrics(
    queue: JobQueue, connect_timeout: float = 0.5
) -> Dict[str, Any]:
    """Per-daemon metrics snapshots plus the fleet-wide merge.

    Every daemon with a reachable socket is scraped live (its registry as
    of *now*); daemons without one — polling-only, or between heartbeat and
    death — fall back to the snapshot riding their last heartbeat.  The
    ``fleet`` entry is the bucket-wise sum over whatever was gathered, the
    payload ``repro-dew metrics`` renders.
    """
    from repro.service.socketserver import SOCKET_SUFFIX, SocketTransport

    per_daemon: Dict[str, Dict[str, Any]] = {}
    for daemon_id, payload in sorted(queue.daemon_heartbeats().items()):
        snapshot = payload.get("metrics")
        if isinstance(snapshot, dict):
            per_daemon[daemon_id] = {"source": "heartbeat", "metrics": snapshot}
    directory = queue.sockets_dir()
    if directory.is_dir():
        for path in sorted(directory.glob("*" + SOCKET_SUFFIX)):
            daemon_id = path.name[: -len(SOCKET_SUFFIX)]
            try:
                transport = SocketTransport(path, connect_timeout=connect_timeout)
            except OSError:
                continue  # stale socket file; the heartbeat entry stands
            try:
                response = transport.request(
                    {"wire": SERVICE_WIRE_VERSION, "op": "metrics"},
                    timeout=connect_timeout + 2.0,
                )
                if response.get("ok") and isinstance(response.get("metrics"), dict):
                    per_daemon[daemon_id] = {
                        "source": "socket",
                        "metrics": response["metrics"],
                    }
            except (OSError, ValueError):
                pass
            finally:
                transport.close()
    merged = merge_snapshots([entry["metrics"] for entry in per_daemon.values()])
    return ok_response("metrics", daemons=per_daemon, fleet=merged)


class ServiceClient:
    """Client surface over one service directory (files and/or socket).

    The file path is always valid: operations are plain reads/writes
    against the shared :class:`~repro.service.queue.JobQueue`, with or
    without a live daemon.  With ``transport="auto"`` (the default) the
    client additionally looks for a live daemon socket on first use and
    routes operations through it — one round trip instead of several
    ``stat``/read calls, and :meth:`wait` without a polling floor — falling
    back to files the moment the socket misbehaves.  ``transport="files"``
    never touches sockets (the PR 5 behaviour, and what benchmarks use to
    measure the polling path); ``transport="socket"`` makes socket failures
    hard errors instead of silent fallbacks.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        create: bool = False,
        transport: str = "auto",
        trace_cache: Union[None, bool, str, os.PathLike, Any] = None,
    ) -> None:
        if transport not in ("auto", "files", "socket"):
            raise ServiceError(
                f"unknown transport {transport!r} (expected auto, files or socket)"
            )
        self.queue = open_service(root, create=create)
        self.transport = transport
        self._socket: Optional[SocketTransport] = None
        self._socket_missing = False
        # None -> share the service's own plane cache (<root>/tracecache),
        # the same directory the daemons use, so a submit's fingerprint
        # sidecar is already warm for every daemon in the fleet.  False
        # disables; a path or open cache overrides.
        self._trace_cache_setting = trace_cache
        self._plane_cache_ready = False
        self._plane_cache: Optional[Any] = None

    def plane_cache(self) -> Optional[Any]:
        """The client's trace plane cache, opened lazily (``None`` if disabled).

        Cache failures (unwritable directory, foreign manifest) degrade to
        no cache rather than failing the operation — the cache is an
        accelerator, never a correctness dependency.
        """
        if not self._plane_cache_ready:
            self._plane_cache_ready = True
            setting = self._trace_cache_setting
            if setting is None or setting is True:
                setting = self.queue.root / "tracecache"
            try:
                from repro.trace.planecache import coerce_plane_cache

                self._plane_cache = coerce_plane_cache(setting)
            except (OSError, ReproError):
                self._plane_cache = None
        return self._plane_cache

    # -- socket plumbing ---------------------------------------------------------

    @property
    def using_socket(self) -> bool:
        """Whether a daemon socket is currently connected."""
        return self._socket is not None

    def close(self) -> None:
        """Drop the socket connection, if any (the file path needs no close)."""
        socket_transport, self._socket = self._socket, None
        if socket_transport is not None:
            socket_transport.close()

    def _socket_transport(self, rediscover: bool = False) -> Optional[SocketTransport]:
        if self.transport == "files":
            return None
        if self._socket is not None:
            return self._socket
        if self._socket_missing and not rediscover and self.transport == "auto":
            return None  # no daemon was listening; stay on files until asked
        self._socket = discover_socket(self.queue)
        self._socket_missing = self._socket is None
        if self._socket is None and self.transport == "socket":
            raise ServiceError(
                f"no live daemon socket under {self.queue.sockets_dir()}"
            )
        return self._socket

    def _socket_request(
        self, payload: Dict[str, Any], timeout: float = 30.0
    ) -> Optional[Dict[str, Any]]:
        """One socket round trip, or ``None`` when the file path should serve.

        A connection that dies mid-request gets one rediscovery (another
        fleet daemon may be listening); after that, ``auto`` clients fall
        back to files and ``socket`` clients raise.
        """
        payload = dict(payload)
        payload["wire"] = SERVICE_WIRE_VERSION
        for attempt in (False, True):
            transport = self._socket_transport(rediscover=attempt)
            if transport is None:
                return None
            try:
                return transport.request(payload, timeout=timeout)
            except (OSError, ValueError) as exc:
                self.close()
                if attempt:
                    if self.transport == "socket":
                        raise ServiceError(
                            f"daemon socket request failed: {exc}"
                        ) from exc
                    return None
        return None  # pragma: no cover - loop always returns

    @staticmethod
    def _checked(response: Dict[str, Any]) -> Dict[str, Any]:
        if not response.get("ok", False):
            raise ServiceError(str(response.get("error", "service request failed")))
        return response

    # -- operations --------------------------------------------------------------

    def submit(
        self,
        request: SweepRequest,
        priority: int = 0,
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        """Enqueue a sweep request; idempotent per canonical identity.

        The trace is loaded (or taken from ``trace=``) to fingerprint it —
        identity is *content*-addressed, so renaming a trace file does not
        defeat coalescing, and a changed file under the same name cannot
        serve stale results.  With the plane cache enabled (the default),
        the fingerprint rides the ``(path, mtime, size)`` sidecar: the
        first submit of a corpus hashes it once and every later submit —
        and every daemon executing the job — reads the sidecar instead of
        re-hashing the same bytes.
        """
        if trace is None:
            cache = self.plane_cache()
            fingerprint = (
                cache.cached_fingerprint(request.trace_path)
                if cache is not None
                else None
            )
            if fingerprint is None:
                # Cold: load + hash once, then record the sidecar so the
                # daemon (and the next submit) skips both.
                trace = request.load_trace(cache=cache)
                fingerprint = trace.fingerprint()
        else:
            # An explicitly passed trace may not match the file at
            # trace_path, so its fingerprint must not seed the sidecar.
            fingerprint = trace.fingerprint()
        # One grid decomposition serves everything: the id, the cell count
        # and the persisted digest list the daemon's overlap check reads
        # (so scheduling never has to re-derive store keys per tick).
        digests = request.cell_digests(fingerprint)
        job_id = request.canonical_job_id(fingerprint, cell_digests=digests)
        wire = request.to_wire()
        wire["trace_fingerprint"] = fingerprint
        wire["cells"] = len(digests)
        wire["cell_digests"] = digests
        # The trace id is minted here — the submitting edge — and rides the
        # durable job record, so every span any daemon emits for this job
        # (including a re-execution after a crash) carries the same id.  A
        # deduped submission keeps the *original* submission's id: the
        # coalesced request observes the first request's trace.
        trace_id = new_trace_id()
        wire["trace_id"] = trace_id
        response = self._socket_request(
            {"op": "submit", "job_id": job_id, "request": wire, "priority": priority}
        )
        if response is not None:
            return self._checked(response)
        record, deduped = self.queue.submit(job_id, wire, priority=priority)
        return ok_response(
            "submit",
            job_id=record.id,
            state=record.state,
            deduped=deduped,
            priority=record.priority,
            trace_id=str(record.request.get("trace_id", trace_id)),
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current record."""
        response = self._socket_request({"op": "status", "job": job_id})
        if response is not None:
            return self._checked(response)
        record = self.queue.find(job_id)
        return ok_response("status", job=record_to_wire(record))

    def result_text(self, job_id: str) -> str:
        """A completed job's result payload, verbatim.

        This is byte-identical to what ``repro-dew sweep --format json``
        prints for the same grid over the same trace.
        """
        response = self._socket_request({"op": "result", "job": job_id})
        if response is not None:
            return str(self._checked(response)["payload"])
        return self.queue.result_text(job_id)

    def result_frame(self, job_id: str) -> ResultsFrame:
        """A completed job's results as a columnar frame.

        This is the hand-off to the exploration layer: the frame feeds
        ``explore pareto`` / ``explore tune`` exactly like a sweep JSON
        payload or a store directory does.
        """
        payload = json.loads(self.result_text(job_id))
        return ResultsFrame.from_rows(
            payload["configurations"],
            simulator_name=str(payload.get("simulator", "sweep")),
            trace_name=str(payload.get("trace", "trace")),
        )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job.

        Queued and failed jobs flip to ``cancelled`` immediately; for a
        *running* job a durable cancel request is recorded instead and the
        daemon stops it between cells — the response carries
        ``requested=True`` and the job's still-running record in that case.
        """
        response = self._socket_request({"op": "cancel", "job": job_id})
        if response is not None:
            return self._checked(response)
        record = self.queue.cancel(job_id)
        return ok_response(
            "cancel",
            job=record_to_wire(record),
            requested=record.state == STATE_RUNNING,
        )

    def prune_events(self, retain_seconds: float = DEFAULT_EVENT_RETAIN_SECONDS) -> int:
        """Prune stale submit-event files (see :meth:`JobQueue.prune_events`)."""
        return self.queue.prune_events(retain_seconds)

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """All job records (optionally filtered by state) in claim order."""
        return [record_to_wire(record) for record in self.queue.records(state)]

    def stats(self) -> Dict[str, Any]:
        """Queue counts, dedup accounting and per-daemon fleet liveness."""
        response = self._socket_request({"op": "stats"})
        if response is not None:
            return self._checked(response)
        return service_stats(self.queue)

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
    ) -> JobRecord:
        """Block until the job reaches a terminal state (or ``failed``).

        Socket-connected clients park the wait inside the daemon, which
        wakes them the moment the job finishes — no polling at all.  The
        file path polls with capped exponential backoff plus jitter
        (starting at ``poll_interval``, capped at ``max_poll_interval``,
        reset whenever the observed state changes), so a long wait on an
        idle deep queue stops hammering the record files with ``stat``
        calls while a job that just went ``queued -> running`` is sampled
        eagerly again.  Returns the final record; raises
        :class:`~repro.errors.ServiceError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + float(timeout)
        response = self._socket_request(
            {"op": "wait", "job": job_id, "timeout": float(timeout)},
            timeout=float(timeout) + 5.0,
        )
        if response is not None:
            if response.get("ok", False):
                return JobRecord.from_dict(response["job"])
            error = str(response.get("error", ""))
            if "shutting down" not in error:
                raise ServiceError(error or "service request failed")
            # The daemon stopped mid-wait: finish the wait over files.
        interval = max(float(poll_interval), 0.001)
        cap = max(float(max_poll_interval), interval)
        last_state: Optional[str] = None
        while True:
            record = self.queue.find(job_id)
            if record.state in TERMINAL_STATES or record.state == STATE_FAILED:
                return record
            if record.state != last_state:
                last_state = record.state
                interval = max(float(poll_interval), 0.001)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{record.id[:12]} (state: {record.state})"
                )
            time.sleep(min(interval * (0.5 + random.random()), remaining))
            interval = min(interval * 1.7, cap)

    def result_when_done(
        self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> str:
        """Convenience: :meth:`wait` then :meth:`result_text`."""
        record = self.wait(job_id, timeout=timeout, poll_interval=poll_interval)
        if record.state != STATE_DONE:
            raise ServiceError(
                f"job {record.id[:12]} finished as {record.state}"
                + (f": {record.error}" if record.error else "")
            )
        return self.result_text(record.id)
