"""JSON wire schema and the polling-file :class:`ServiceClient`.

The transport is *shared files*: clients and daemon operate on one service
directory (the :class:`~repro.service.queue.JobQueue` layout), so a submit
is an atomic enqueue, status is a record read, and waiting is polling — no
sockets, no extra dependencies, and every operation works whether or not a
daemon is currently alive (jobs queue up and are drained when one starts).

Every client operation has a JSON request/response shape so the CLI's
``--format json`` output is machine-consumable and stable:

* ``submit``  -> ``{"ok": true, "type": "submit", "job_id": ..., "deduped": ...}``
* ``status``  -> ``{"ok": true, "type": "status", "job": {...}}``
* ``result``  -> the job's result payload verbatim (the exact bytes
  ``repro-dew sweep --format json`` would print for the same grid)
* ``cancel``  -> ``{"ok": true, "type": "cancel", "job": {...}}``
* ``stats``   -> ``{"ok": true, "type": "stats", "queue": {...}, ...}``

Errors become ``{"ok": false, "error": "..."}`` with a non-zero exit code
at the CLI.

The canonical job identity reuses the store's content addressing: a request
is decomposed into the same :class:`~repro.engine.sweep.SweepJob` grid a
direct sweep would run, and the job id is the SHA-256 of the trace
fingerprint plus the sorted per-cell store-key digests.  Two requests that
would simulate the same cells over the same trace therefore collapse onto
one queue entry, no matter how their options were spelled.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.results import ResultsFrame
from repro.engine.sweep import SweepJob, build_grid_jobs
from repro.errors import ServiceError
from repro.service.queue import (
    DEFAULT_EVENT_RETAIN_SECONDS,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
    TERMINAL_STATES,
    JobRecord,
    open_service,
)
from repro.trace.files import load_trace_file
from repro.trace.trace import Trace

#: Version of the request/response wire format.
SERVICE_WIRE_VERSION = 1

#: Default sizes swept when a request does not pin ``max_sets``.
DEFAULT_MAX_SETS = 16384


def doubling_set_sizes(max_sets: int) -> List[int]:
    """The power-of-two set-size ladder ``1, 2, 4, ... <= max_sets``."""
    sizes = []
    size = 1
    while size <= int(max_sets):
        sizes.append(size)
        size *= 2
    return sizes


def ok_response(kind: str, **body: Any) -> Dict[str, Any]:
    """A successful wire response envelope."""
    payload: Dict[str, Any] = {"ok": True, "type": kind, "wire": SERVICE_WIRE_VERSION}
    payload.update(body)
    return payload


def error_response(error: Union[str, Exception]) -> Dict[str, Any]:
    """A failed wire response envelope."""
    return {"ok": False, "wire": SERVICE_WIRE_VERSION, "error": str(error)}


@dataclass(frozen=True)
class SweepRequest:
    """One client sweep request (the ``request`` field of a job record).

    The grid parameters mirror ``repro-dew sweep``'s; the request is
    decomposed into engine jobs with the same :func:`build_grid_jobs`
    call a direct sweep uses, which is what makes service results
    byte-identical to direct ones.
    """

    trace_path: str
    block_sizes: Tuple[int, ...] = (4, 16, 64)
    associativities: Tuple[int, ...] = (1, 4, 8)
    max_sets: int = DEFAULT_MAX_SETS
    policies: Tuple[str, ...] = ("fifo",)
    seed: int = 0

    def to_wire(self) -> Dict[str, Any]:
        """JSON-able request payload stored in the job record."""
        return {
            "wire": SERVICE_WIRE_VERSION,
            "trace_path": self.trace_path,
            "block_sizes": list(self.block_sizes),
            "associativities": list(self.associativities),
            "max_sets": self.max_sets,
            "policies": list(self.policies),
            "seed": self.seed,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SweepRequest":
        """Inverse of :meth:`to_wire`."""
        if payload.get("wire") != SERVICE_WIRE_VERSION:
            raise ServiceError(
                f"request uses wire version {payload.get('wire')!r}; "
                f"this build reads version {SERVICE_WIRE_VERSION}"
            )
        return cls(
            trace_path=str(payload["trace_path"]),
            block_sizes=tuple(int(b) for b in payload["block_sizes"]),
            associativities=tuple(int(a) for a in payload["associativities"]),
            max_sets=int(payload.get("max_sets", DEFAULT_MAX_SETS)),
            policies=tuple(str(p) for p in payload["policies"]),
            seed=int(payload.get("seed", 0)),
        )

    def build_jobs(self) -> List[SweepJob]:
        """The engine-job decomposition a direct sweep would execute."""
        return build_grid_jobs(
            block_sizes=self.block_sizes,
            associativities=self.associativities,
            set_sizes=doubling_set_sizes(self.max_sets),
            policies=self.policies,
            seed=self.seed,
        )

    def load_trace(self) -> Trace:
        """Load the request's trace file."""
        return load_trace_file(self.trace_path)

    def cell_digests(self, trace_fingerprint: str) -> List[str]:
        """Sorted store-key digests of every cell this request covers."""
        return sorted(
            job.store_key(trace_fingerprint).digest for job in self.build_jobs()
        )

    def canonical_job_id(
        self,
        trace_fingerprint: str,
        cell_digests: Optional[List[str]] = None,
    ) -> str:
        """Content identity of this request: trace + cell store addresses.

        Requests that cover the same cells over the same trace — however
        their grids were spelled — share an id, which is what makes queue
        submission idempotent and duplicate submissions free.  Callers that
        already hold the digests (the submit path computes them once and
        persists them in the job record) pass them in to skip recomputing.
        """
        payload = json.dumps(
            {
                "schema": SERVICE_WIRE_VERSION,
                "trace": str(trace_fingerprint),
                "cells": (
                    sorted(cell_digests)
                    if cell_digests is not None
                    else self.cell_digests(trace_fingerprint)
                ),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()


def record_to_wire(record: JobRecord) -> Dict[str, Any]:
    """A job record as a wire-friendly dictionary."""
    return record.to_dict()


class ServiceClient:
    """Client surface over one service directory (the polling transport).

    All operations are plain file reads/writes against the shared
    :class:`~repro.service.queue.JobQueue`, so they are valid with or
    without a live daemon; :meth:`wait` polls until the job reaches a
    terminal state.
    """

    def __init__(self, root: Union[str, os.PathLike], create: bool = False) -> None:
        self.queue = open_service(root, create=create)

    # -- operations --------------------------------------------------------------

    def submit(
        self,
        request: SweepRequest,
        priority: int = 0,
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        """Enqueue a sweep request; idempotent per canonical identity.

        The trace is loaded (or taken from ``trace=``) to fingerprint it —
        identity is *content*-addressed, so renaming a trace file does not
        defeat coalescing, and a changed file under the same name cannot
        serve stale results.
        """
        trace = trace if trace is not None else request.load_trace()
        fingerprint = trace.fingerprint()
        # One grid decomposition serves everything: the id, the cell count
        # and the persisted digest list the daemon's overlap check reads
        # (so scheduling never has to re-derive store keys per tick).
        digests = request.cell_digests(fingerprint)
        job_id = request.canonical_job_id(fingerprint, cell_digests=digests)
        wire = request.to_wire()
        wire["trace_fingerprint"] = fingerprint
        wire["cells"] = len(digests)
        wire["cell_digests"] = digests
        record, deduped = self.queue.submit(job_id, wire, priority=priority)
        return ok_response(
            "submit",
            job_id=record.id,
            state=record.state,
            deduped=deduped,
            priority=record.priority,
        )

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current record."""
        record = self.queue.find(job_id)
        return ok_response("status", job=record_to_wire(record))

    def result_text(self, job_id: str) -> str:
        """A completed job's result payload, verbatim.

        This is byte-identical to what ``repro-dew sweep --format json``
        prints for the same grid over the same trace.
        """
        return self.queue.result_text(job_id)

    def result_frame(self, job_id: str) -> ResultsFrame:
        """A completed job's results as a columnar frame.

        This is the hand-off to the exploration layer: the frame feeds
        ``explore pareto`` / ``explore tune`` exactly like a sweep JSON
        payload or a store directory does.
        """
        payload = json.loads(self.result_text(job_id))
        return ResultsFrame.from_rows(
            payload["configurations"],
            simulator_name=str(payload.get("simulator", "sweep")),
            trace_name=str(payload.get("trace", "trace")),
        )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job.

        Queued and failed jobs flip to ``cancelled`` immediately; for a
        *running* job a durable cancel request is recorded instead and the
        daemon stops it between cells — the response carries
        ``requested=True`` and the job's still-running record in that case.
        """
        record = self.queue.cancel(job_id)
        return ok_response(
            "cancel",
            job=record_to_wire(record),
            requested=record.state == STATE_RUNNING,
        )

    def prune_events(self, retain_seconds: float = DEFAULT_EVENT_RETAIN_SECONDS) -> int:
        """Prune stale submit-event files (see :meth:`JobQueue.prune_events`)."""
        return self.queue.prune_events(retain_seconds)

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """All job records (optionally filtered by state) in claim order."""
        return [record_to_wire(record) for record in self.queue.records(state)]

    def stats(self) -> Dict[str, Any]:
        """Queue counts, dedup accounting and the daemon's last heartbeat."""
        counts = self.queue.counts()
        submissions = self.queue.submissions()
        distinct = sum(counts.values())
        heartbeat = None
        heartbeat_path = self.queue.root / "daemon.json"
        if heartbeat_path.is_file():
            try:
                heartbeat = json.loads(heartbeat_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                heartbeat = None
        return ok_response(
            "stats",
            queue=counts,
            submissions=submissions,
            distinct_jobs=distinct,
            coalesced_submissions=max(submissions - distinct, 0),
            dedup_ratio=(
                round(max(submissions - distinct, 0) / submissions, 6)
                if submissions
                else 0.0
            ),
            daemon=heartbeat,
        )

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> JobRecord:
        """Poll until the job reaches a terminal state (or ``failed``).

        Returns the final record; raises :class:`~repro.errors.ServiceError`
        when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + float(timeout)
        while True:
            record = self.queue.find(job_id)
            if record.state in TERMINAL_STATES or record.state == STATE_FAILED:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{record.id[:12]} (state: {record.state})"
                )
            time.sleep(poll_interval)

    def result_when_done(
        self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> str:
        """Convenience: :meth:`wait` then :meth:`result_text`."""
        record = self.wait(job_id, timeout=timeout, poll_interval=poll_interval)
        if record.state != STATE_DONE:
            raise ServiceError(
                f"job {record.id[:12]} finished as {record.state}"
                + (f": {record.error}" if record.error else "")
            )
        return self.result_text(record.id)
