"""Store-backed simulation service: durable queue, daemon and client.

The service layer turns the one-shot sweep pipeline into a long-running,
multi-client system while preserving the byte-identity guarantees the rest
of the package is built on — a sweep served from the daemon returns exactly
the payload of :func:`repro.engine.sweep.run_sweep` executed directly.

``queue``
    :class:`JobQueue`, a crash-safe on-disk job queue: atomic enqueue /
    claim / complete state transitions (one ``os.replace`` per transition),
    priorities, and idempotent submission keyed by the same canonical
    content identity the result store uses.
``api``
    The JSON wire schema and :class:`ServiceClient` — submit / status /
    result / cancel / stats over the polling-file transport, transparently
    upgraded to a daemon's Unix-domain socket when one is live (clients
    and daemons share a service directory either way).
``daemon``
    :class:`ServiceDaemon`, the scheduler draining the queue through the
    fused sweep executor with a bounded worker pool, coalescing work that
    is already stored or already in flight, and recording per-job
    timings and per-cell progress durably.  Any number of daemons may
    drain one service directory: claims carry heartbeat-renewed leases,
    recovery re-queues only provably-dead owners' jobs, and in-flight
    marks are shared on disk.
``socketserver``
    The per-daemon Unix-domain-socket front end and its client transport:
    the same JSON envelopes as the polling path, minus the polling floor.
"""

from repro.service.api import (
    SERVICE_WIRE_VERSION,
    ServiceClient,
    SweepRequest,
    error_response,
    ok_response,
    service_stats,
)
from repro.service.daemon import ServiceDaemon, default_daemon_id
from repro.service.queue import (
    DEFAULT_JOB_RETAIN_SECONDS,
    DEFAULT_LEASE_SECONDS,
    JOB_STATES,
    SERVICE_SCHEMA_VERSION,
    JobQueue,
    JobRecord,
    open_service,
)
from repro.service.socketserver import (
    ServiceSocketServer,
    SocketTransport,
    discover_socket,
)

__all__ = [
    "DEFAULT_JOB_RETAIN_SECONDS",
    "DEFAULT_LEASE_SECONDS",
    "JOB_STATES",
    "SERVICE_SCHEMA_VERSION",
    "SERVICE_WIRE_VERSION",
    "JobQueue",
    "JobRecord",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceSocketServer",
    "SocketTransport",
    "SweepRequest",
    "default_daemon_id",
    "discover_socket",
    "error_response",
    "ok_response",
    "open_service",
    "service_stats",
]
