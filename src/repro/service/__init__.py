"""Store-backed simulation service: durable queue, daemon and client.

The service layer turns the one-shot sweep pipeline into a long-running,
multi-client system while preserving the byte-identity guarantees the rest
of the package is built on — a sweep served from the daemon returns exactly
the payload of :func:`repro.engine.sweep.run_sweep` executed directly.

``queue``
    :class:`JobQueue`, a crash-safe on-disk job queue: atomic enqueue /
    claim / complete state transitions (one ``os.replace`` per transition),
    priorities, and idempotent submission keyed by the same canonical
    content identity the result store uses.
``api``
    The JSON wire schema and :class:`ServiceClient` — submit / status /
    result / cancel / stats over the polling-file transport (clients and
    daemon share a service directory; no sockets, no dependencies).
``daemon``
    :class:`ServiceDaemon`, the scheduler draining the queue through the
    fused sweep executor with a bounded worker pool, coalescing work that
    is already stored or already in flight, and recording per-job
    timings and per-cell progress durably.
"""

from repro.service.api import (
    SERVICE_WIRE_VERSION,
    ServiceClient,
    SweepRequest,
    error_response,
    ok_response,
)
from repro.service.daemon import ServiceDaemon
from repro.service.queue import (
    JOB_STATES,
    SERVICE_SCHEMA_VERSION,
    JobQueue,
    JobRecord,
    open_service,
)

__all__ = [
    "JOB_STATES",
    "SERVICE_SCHEMA_VERSION",
    "SERVICE_WIRE_VERSION",
    "JobQueue",
    "JobRecord",
    "ServiceClient",
    "ServiceDaemon",
    "SweepRequest",
    "error_response",
    "ok_response",
    "open_service",
]
