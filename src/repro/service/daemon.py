"""The service daemon: a long-running scheduler over the durable job queue.

One :class:`ServiceDaemon` drains a :class:`~repro.service.queue.JobQueue`
through :func:`repro.engine.sweep.run_sweep`'s fused executor, backed by a
persistent result store.  The combination gives the service its three core
properties:

**Coalescing.**  Duplicate submissions never reach the daemon at all (the
queue keys jobs by canonical content identity).  Cells shared by *different*
jobs cost zero extra simulation in two ways: cells already persisted are
loaded from the store instead of executed, and cells currently being
computed by another worker are *in flight* — a job overlapping in-flight
work is deferred (left queued) until the overlap clears, at which point its
overlapping cells are store hits.

**Durability.**  Cell completion is persisted twice over: the store write
happens the moment a cell's execution unit finishes inside ``run_sweep``
(the fused executor persists per decode-group batch — often a single cell,
at most the same-block-size cells that share one decode), and the job
record's progress counters are atomically rewritten from the job-granular
``on_result`` hook.  A daemon killed mid-job therefore loses at most the
batch it was computing; after a restart, :meth:`JobQueue.recover` re-queues
the job and the re-run pays only for unpersisted cells.

**Byte-identity.**  The daemon runs exactly the engine jobs a direct sweep
would run and stores the merged payload verbatim, so a served result equals
``run_sweep`` executed directly — cold, warm, killed-and-resumed alike.

The bounded worker pool (``workers``) executes that many *jobs*
concurrently in threads; each job's sweep may additionally fan out over
``sweep_workers`` processes.  With ``workers=1`` execution is inline in
the scheduler loop, which is also what makes the kill-mid-job semantics
deterministic to test.

**Fleet operation.**  Any number of daemons may drain the *same* service
directory and store: claims are atomic renames (exactly one winner), each
claim carries the claiming daemon's id plus a lease that the daemon renews
through its heartbeat file, and recovery (startup and periodic) re-queues
only jobs whose owner is provably gone — dead pid, stale heartbeat, or the
daemon's own previous life.  In-flight cell marks live on disk in the
shared store, so the overlap deferral that coalesces concurrent duplicate
work operates across the whole fleet, and each daemon serves a
Unix-domain socket giving clients a polling-free fast path.
"""

from __future__ import annotations

import json
import os
import re
import time
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Union

from repro.engine.sweep import SweepJob, run_sweep
from repro.errors import ReproError, ServiceError, StoreError, SweepAborted
from repro.obs.metrics import get_registry
from repro.obs.tracing import TELEMETRY_DIR, SpanLog
from repro.service.api import SweepRequest
from repro.service.queue import (
    DEFAULT_EVENT_RETAIN_SECONDS,
    DEFAULT_JOB_RETAIN_SECONDS,
    DEFAULT_LEASE_SECONDS,
    STATE_QUEUED,
    JobQueue,
    JobRecord,
    _local_host,
    open_service,
)
from repro.service.socketserver import ServiceSocketServer
from repro.store import ResultStore, StoreKey, open_store
from repro.store.resultstore import (
    DEFAULT_INFLIGHT_TTL_SECONDS,
    _atomic_replace,
)
from repro.trace.files import trace_name_for_path
from repro.trace.planecache import (
    CachedPlane,
    PlaneKey,
    TracePlaneCache,
    coerce_plane_cache,
)

#: Legacy single-daemon heartbeat file name (pre-fleet); per-daemon
#: heartbeats now live under ``daemons/<id>.json`` and this name remains
#: only as the stats fallback for directories written by older builds.
HEARTBEAT_NAME = "daemon.json"

#: Daemon ids become file names (heartbeat + socket), so keep them tame.
_DAEMON_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def default_daemon_id() -> str:
    """The id a daemon takes when none is given: ``<host>-<pid>``.

    Stable across a same-process restart (the kill/recover tests rely on
    the restarted daemon recognising its own stranded claims) and unique
    across fleet processes on one host.
    """
    host = re.sub(r"[^A-Za-z0-9._-]", "-", _local_host()) or "local"
    return f"{host}-{os.getpid()}"


class ServiceDaemon:
    """Scheduler draining one service directory's queue through the store.

    Parameters
    ----------
    root:
        The service directory (created if missing).
    store:
        Result store backing execution — a :class:`ResultStore`, a path, or
        ``None`` for the default ``<root>/store``.  Sharing this store
        between the daemon and direct ``repro-dew sweep --store`` runs is
        supported (and is what makes them warm each other).
    workers:
        Jobs executed concurrently.  ``1`` (the default) runs jobs inline
        in the scheduler loop; more uses a bounded thread pool.
    sweep_workers:
        Process fan-out *within* each job's sweep (``run_sweep(workers=)``).
    shm:
        Shared-memory trace fan-out forwarded to ``run_sweep(shm=)``:
        ``None`` (default) publishes the decoded trace once per sweep and
        lets the sweep's worker processes map it zero-copy, with automatic
        fallback to the copy path; ``False`` disables the plane.
    poll_interval:
        Idle sleep between scheduler ticks, in seconds.
    on_cell:
        Optional observability hook called as ``on_cell(record, index,
        job, cached)`` after every persisted cell — the test suite uses it
        to deterministically kill the daemon mid-job.
    daemon_id:
        This daemon's fleet identity (heartbeat + socket file names, claim
        ownership).  Defaults to ``<host>-<pid>``; two concurrent daemons
        in one *process* must be given distinct ids explicitly.
    lease_seconds:
        Claim lease length.  The daemon renews by heartbeating; a peer
        whose heartbeat goes stale for this long (or whose pid dies on
        this host) forfeits its running jobs to recovery.
    socket:
        Serve the Unix-domain-socket front end (default).  A socket that
        fails to bind downgrades to polling-only with a heartbeat note
        rather than failing the daemon.
    job_retain_seconds:
        Retention window for finished job records, applied by the startup
        ``queue gc`` sweep.
    trace_cache:
        The decoded-trace plane cache (see
        :mod:`repro.trace.planecache`): ``None`` (default) opens
        ``<root>/tracecache``, ``False`` disables, a path or open
        :class:`~repro.trace.planecache.TracePlaneCache` overrides.  With
        a warm cache the daemon executes a job without ever opening the
        trace file: the fingerprint comes from the ``(path, mtime, size)``
        sidecar and the decoded plane is attached as a read-only mmap.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        store: Optional[Union[str, os.PathLike, ResultStore]] = None,
        workers: int = 1,
        sweep_workers: int = 1,
        shm: Optional[bool] = None,
        poll_interval: float = 0.1,
        on_cell: Optional[Callable[[JobRecord, int, SweepJob, bool], None]] = None,
        event_retain_seconds: float = DEFAULT_EVENT_RETAIN_SECONDS,
        daemon_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        socket: bool = True,
        job_retain_seconds: float = DEFAULT_JOB_RETAIN_SECONDS,
        inflight_ttl_seconds: float = DEFAULT_INFLIGHT_TTL_SECONDS,
        trace_cache: Union[None, bool, str, os.PathLike, TracePlaneCache] = None,
    ) -> None:
        self.queue: JobQueue = open_service(root)
        if store is None:
            store = Path(self.queue.root) / "store"
        self.store: ResultStore = (
            store if isinstance(store, ResultStore) else open_store(store)
        )
        # The decoded-trace plane cache: shared by every daemon draining
        # this service directory (and by submitting clients, for the
        # fingerprint sidecar), so an N-daemon fleet decodes each corpus
        # exactly once.  None -> <root>/tracecache; False disables.  An
        # unusable cache degrades to trace loading rather than failing
        # the daemon — it is an accelerator, never a dependency.
        self.trace_cache: Optional[TracePlaneCache] = None
        if trace_cache is not False:
            if trace_cache is None or trace_cache is True:
                trace_cache = Path(self.queue.root) / "tracecache"
            try:
                self.trace_cache = coerce_plane_cache(trace_cache)
            except (OSError, ReproError):
                self.trace_cache = None
        self.daemon_id = default_daemon_id() if daemon_id is None else str(daemon_id)
        if not _DAEMON_ID_RE.match(self.daemon_id):
            raise ServiceError(
                f"daemon id {self.daemon_id!r} is not a safe file name "
                "(letters, digits, dot, underscore, dash; max 64 chars)"
            )
        self.lease_seconds = max(float(lease_seconds), 0.1)
        self.socket_enabled = bool(socket)
        self.socket_server: Optional[ServiceSocketServer] = None
        self.socket_error: Optional[str] = None
        self.job_retain_seconds = float(job_retain_seconds)
        self.inflight_ttl_seconds = float(inflight_ttl_seconds)
        self.workers = max(int(workers), 1)
        self.sweep_workers = max(int(sweep_workers), 1)
        self.shm = shm
        self.poll_interval = max(float(poll_interval), 0.0)
        self.on_cell = on_cell
        self.event_retain_seconds = float(event_retain_seconds)
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.cells_executed = 0
        self.cells_cached = 0
        self.heartbeat_errors = 0
        self._last_heartbeat_error: Optional[str] = None
        # Sticky degradation notes, keyed by condition ("socket", ...).
        # Unlike the transient `note` argument to _write_heartbeat, these
        # survive every renewal until the condition clears — the original
        # bug was a socket-bind failure silently erased by the next
        # heartbeat, leaving the fleet view claiming a healthy socket.
        self._notes: Dict[str, str] = {}
        registry = get_registry()
        self._metric_jobs_done = registry.counter(
            "daemon_jobs_done_total", help="Jobs this process finished as done."
        )
        self._metric_jobs_failed = registry.counter(
            "daemon_jobs_failed_total", help="Jobs this process finished as failed."
        )
        self._metric_jobs_cancelled = registry.counter(
            "daemon_jobs_cancelled_total",
            help="Jobs this process finished as cancelled.",
        )
        self._metric_cells_executed = registry.counter(
            "daemon_cells_executed_total", help="Sweep cells simulated fresh."
        )
        self._metric_cells_cached = registry.counter(
            "daemon_cells_cached_total", help="Sweep cells loaded from the store."
        )
        self._metric_heartbeat_errors = registry.counter(
            "daemon_heartbeat_errors_total", help="Failed heartbeat writes."
        )
        self._metric_job_seconds = registry.histogram(
            "daemon_job_seconds", help="Wall-clock seconds per finished job."
        )
        # One span log per daemon under <root>/telemetry/ — every claim,
        # cell and terminal transition lands here with the submission's
        # trace id, so one id can be followed across the whole fleet.
        self.span_log = SpanLog(
            Path(self.queue.root) / TELEMETRY_DIR,
            name=f"spans-{self.daemon_id}",
            source=self.daemon_id,
        )
        self._stopping = False
        self._started_at = time.time()
        self._lock = Lock()
        # Separate lock for heartbeat pacing state: _write_heartbeat calls
        # heartbeat(), which takes self._lock — a shared (non-reentrant)
        # lock would deadlock the throttled renewal path.
        self._heartbeat_state_lock = Lock()
        self._last_heartbeat_at = 0.0
        self._last_recover_at = time.monotonic()
        self._inflight_jobs: Dict[str, List[StoreKey]] = {}  # job id -> cell keys

    # -- lifecycle ---------------------------------------------------------------

    def stop(self) -> None:
        """Ask the scheduler loop to exit after the current tick."""
        self._stopping = True

    def run(self, drain: bool = False, max_jobs: Optional[int] = None) -> int:
        """The scheduler loop; returns the number of jobs brought to an end.

        ``drain=True`` exits once no job is queued and nothing is in
        flight (batch mode — the CI smoke and the tests use it); jobs that
        are queued but deferred on a peer's in-flight work keep the daemon
        alive until the overlap clears.  ``max_jobs`` bounds how many jobs
        are finished before returning.  Startup always begins with a
        lease-aware :meth:`JobQueue.recover` — jobs stranded by dead
        daemons (including this daemon's own previous life) are re-queued
        and their dead owners' in-flight marks dropped, while a live
        peer's leased jobs are untouched — followed by submit-event
        pruning and the ``queue gc`` retention sweep.
        """
        self._stopping = False
        recovered = self.queue.recover(
            daemon_id=self.daemon_id, lease_seconds=self.lease_seconds
        )
        self._release_reclaimed(recovered)
        # Startup is also when queue bookkeeping is compacted: submit
        # events are pruned (their count folds into the archive, keeping
        # the dedup ratio intact) and finished job records past the
        # retention window are evicted with their payloads.
        pruned = self.queue.prune_events(self.event_retain_seconds)
        evicted = self.queue.gc(self.job_retain_seconds)
        evicted_jobs = sum(
            count
            for state, count in evicted.items()
            if state not in ("results", "bytes", "kept")
        )
        notes = []
        if recovered:
            notes.append(f"recovered {len(recovered)} job(s)")
        if pruned:
            notes.append(f"pruned {pruned} submit event(s)")
        if evicted_jobs:
            notes.append(f"evicted {evicted_jobs} finished job(s)")
        self._start_socket()
        self._write_heartbeat(note="; ".join(notes) if notes else None)
        finished_before = self._finished_total()
        try:
            if self.workers == 1:
                self._run_inline(drain, max_jobs, finished_before)
            else:
                self._run_pooled(drain, max_jobs, finished_before)
        finally:
            self._stop_socket()
            self._write_heartbeat(note="stopped")
        return self._finished_total() - finished_before

    def _finished_total(self) -> int:
        return self.jobs_done + self.jobs_failed + self.jobs_cancelled

    def _start_socket(self) -> None:
        if not self.socket_enabled:
            return
        server = ServiceSocketServer(self.queue, self.daemon_id, stats_source=self)
        try:
            server.start()
        except ServiceError as exc:
            # The socket is an accelerator: a daemon that cannot bind one
            # (path length limits, odd filesystems) still serves polling.
            # The degradation note is *sticky*: it rides every subsequent
            # heartbeat renewal (not just the next one) until the socket
            # comes up, so `queue stats` keeps showing the downgrade.
            self.socket_error = str(exc)
            self._notes["socket"] = f"socket disabled: {exc}"
            return
        self.socket_server = server
        self.socket_error = None
        self._notes.pop("socket", None)

    def _stop_socket(self) -> None:
        server, self.socket_server = self.socket_server, None
        if server is not None:
            server.stop()

    def _release_reclaimed(self, recovered: List[JobRecord]) -> None:
        """Drop dead owners' in-flight marks for every reclaimed job.

        Without this, jobs overlapping a SIGKILLed daemon's cells would
        stay deferred until the marker TTL ran out even though recovery
        already proved the owner dead.
        """
        for record in recovered:
            digests = record.request.get("cell_digests")
            if isinstance(digests, list):
                self.store.clear_in_flight_digests([str(d) for d in digests])

    def _periodic_recover(self) -> None:
        """Lease-expiry sweep from the idle path, once per lease interval.

        ``reclaim_own=False``: a daemon's own id on a running record means
        *this* life's worker threads are executing it — only dead peers
        (and this daemon's dead previous lives, whose pid probe fails on
        the claim's behalf) are eligible.
        """
        now = time.monotonic()
        if now - self._last_recover_at < self.lease_seconds:
            return
        self._last_recover_at = now
        recovered = self.queue.recover(
            daemon_id=self.daemon_id,
            lease_seconds=self.lease_seconds,
            reclaim_own=False,
        )
        self._release_reclaimed(recovered)

    def _finished_enough(self, finished_before: int, max_jobs: Optional[int]) -> bool:
        if max_jobs is None:
            return False
        return self._finished_total() - finished_before >= max_jobs

    def _run_inline(
        self, drain: bool, max_jobs: Optional[int], finished_before: int
    ) -> None:
        while not self._stopping and not self._finished_enough(finished_before, max_jobs):
            record = self.queue.claim(
                accept=self._accept,
                daemon_id=self.daemon_id,
                lease_seconds=self.lease_seconds,
            )
            if record is None:
                self._write_heartbeat()
                if drain and not self.queue.records(STATE_QUEUED):
                    break
                self._periodic_recover()
                time.sleep(self.poll_interval)
                continue
            self._mark_job_inflight(record)
            self._execute(record)
            self._write_heartbeat()

    def _run_pooled(
        self, drain: bool, max_jobs: Optional[int], finished_before: int
    ) -> None:
        pending: List[Future] = []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            while True:
                pending = [future for future in pending if not future.done()]
                if self._stopping or self._finished_enough(finished_before, max_jobs):
                    break
                claimed = None
                if len(pending) < self.workers:
                    claimed = self.queue.claim(
                        accept=self._accept,
                        daemon_id=self.daemon_id,
                        lease_seconds=self.lease_seconds,
                    )
                if claimed is not None:
                    # Mark in flight from the scheduler thread, before the
                    # worker starts, so the next claim's overlap check can
                    # never race the marking.
                    self._mark_job_inflight(claimed)
                    pending.append(pool.submit(self._execute, claimed))
                    continue
                self._write_heartbeat()
                if drain and not pending and not self.queue.records(STATE_QUEUED):
                    break
                self._periodic_recover()
                time.sleep(self.poll_interval)
            for future in pending:
                future.result()

    # -- scheduling --------------------------------------------------------------

    def _accept(self, record: JobRecord) -> bool:
        """Defer jobs whose cells overlap work already in flight.

        Once the overlapping job finishes, its cells are in the store and
        the deferred job's next claim attempt loads them for free — that is
        the cross-job half of request coalescing.  The in-flight set is the
        union of this daemon's marks and the on-disk markers every fleet
        daemon writes, so the check holds across daemons: a ``workers=1``
        daemon defers to a *peer's* in-flight cells even though nothing of
        its own is ever concurrently in flight.
        """
        digests = self._request_digests(record)
        if digests is None:
            return True  # malformed requests fail properly inside _execute
        inflight = self.store.in_flight_digests()
        return not (digests & inflight)

    @staticmethod
    def _request_digests(record: JobRecord) -> Optional[set]:
        """The record's cell store-key digests, without re-deriving them.

        The submit path persists the digest list in the job record, so the
        per-tick overlap check is a set intersection; records written
        without one (or malformed ones) fall back to recomputing from the
        request grid.
        """
        stored = record.request.get("cell_digests")
        if isinstance(stored, list) and stored:
            return {str(digest) for digest in stored}
        try:
            request = SweepRequest.from_wire(record.request)
            fingerprint = str(record.request.get("trace_fingerprint", ""))
            return set(request.cell_digests(fingerprint))
        except (ReproError, KeyError, ValueError, TypeError):
            return None

    # -- execution ---------------------------------------------------------------

    def _resolve_sweep_input(self, request: SweepRequest, expected: str, jobs):
        """The cheapest valid sweep input for a claimed job.

        Warm path: when the fingerprint sidecar attests the on-disk file
        still matches the submitted fingerprint *and* the plane cache holds
        the decoded plane for this job grid, attach it — zero text parses,
        zero hashing, only walked pages are ever read.  Otherwise load the
        trace (the sidecar still skips the hash when only the plane is
        missing) and let ``run_sweep(trace_cache=...)`` build the plane for
        the next job over this corpus.
        """
        cache = self.trace_cache
        if cache is not None and expected:
            known = cache.cached_fingerprint(request.trace_path)
            if known == expected:
                plane = cache.get(
                    PlaneKey.make(expected, jobs),
                    trace_name=trace_name_for_path(request.trace_path),
                )
                if plane is not None:
                    return plane
        trace = request.load_trace(cache=cache)
        fingerprint = trace.fingerprint()
        if expected and fingerprint != expected:
            raise ServiceError(
                f"trace {request.trace_path} changed since submission "
                f"(fingerprint {fingerprint[:12]}... != {expected[:12]}...)"
            )
        return trace

    def _execute(self, record: JobRecord) -> None:
        started = time.perf_counter()
        sweep_input = None
        # The submission's trace id rides the durable job record, so it
        # survives daemon crashes and reclaims — whichever daemon executes
        # (or re-executes) the job continues the same trace.
        trace_id = record.request.get("trace_id") or None
        self.span_log.emit(
            "job_claimed",
            trace_id=trace_id,
            job_id=record.id,
            attempt=record.attempts,
        )
        try:
            request = SweepRequest.from_wire(record.request)
            jobs = request.build_jobs()
            expected = str(record.request.get("trace_fingerprint", ""))
            sweep_input = self._resolve_sweep_input(request, expected, jobs)
            record.cells_total = len(jobs)
            record.cells_done = 0
            record.cells_cached = 0
            self.queue.update_running(record)

            def progress(index: int, job: SweepJob, results, cached: bool) -> None:
                record.cells_done += 1
                if cached:
                    record.cells_cached += 1
                self.queue.update_running(record)
                self.span_log.emit(
                    "cell",
                    trace_id=trace_id,
                    job_id=record.id,
                    index=index,
                    cached=cached,
                )
                if self.on_cell is not None:
                    self.on_cell(record, index, job, cached)
                # A long sweep must keep renewing the claim lease even
                # though the scheduler thread is busy (inline mode) — the
                # heartbeat is throttled, so this is nearly free per cell.
                self._maybe_heartbeat()
                # Cancel requests are honored at cell granularity: the cell
                # just persisted stays in the store, the rest of the sweep
                # is abandoned, and run_sweep unwinds its pools/segments
                # before the exception reaches the handler below.
                if self.queue.cancel_requested(record.id):
                    raise SweepAborted(
                        f"job {record.id[:12]} cancelled after "
                        f"{record.cells_done}/{record.cells_total} cell(s)"
                    )

            outcome = run_sweep(
                sweep_input,
                jobs,
                workers=self.sweep_workers,
                store=self.store,
                fused=True,
                on_result=progress,
                shm=self.shm,
                trace_cache=self.trace_cache,
            )
            payload = outcome.merged().to_json()
            record.execute_seconds = time.perf_counter() - started
            phases = {name: round(value, 6) for name, value in outcome.phases.items()}
            record.extra.update(
                {
                    "cached_jobs": outcome.cached_jobs,
                    "executed_jobs": outcome.executed_jobs,
                    "trace": outcome.trace_name,
                    "phases": phases,
                }
            )
            self.queue.complete(record, payload)
            with self._lock:
                self.jobs_done += 1
                self.cells_executed += outcome.executed_jobs
                self.cells_cached += outcome.cached_jobs
            self._metric_jobs_done.inc()
            self._metric_cells_executed.inc(outcome.executed_jobs)
            self._metric_cells_cached.inc(outcome.cached_jobs)
            self._metric_job_seconds.observe(record.execute_seconds)
            self.span_log.emit(
                "job_done",
                trace_id=trace_id,
                job_id=record.id,
                seconds=round(record.execute_seconds, 6),
                cells_done=record.cells_done,
                cells_cached=record.cells_cached,
                phases=phases,
            )
        except SweepAborted as exc:
            record.execute_seconds = time.perf_counter() - started
            record.error = str(exc)
            self.queue.cancel_running(record)
            with self._lock:
                self.jobs_cancelled += 1
            self._metric_jobs_cancelled.inc()
            self.span_log.emit(
                "job_cancelled",
                trace_id=trace_id,
                job_id=record.id,
                seconds=round(record.execute_seconds, 6),
                cells_done=record.cells_done,
            )
        except ReproError as exc:
            record.execute_seconds = time.perf_counter() - started
            self.queue.fail(record, str(exc))
            with self._lock:
                self.jobs_failed += 1
            self._metric_jobs_failed.inc()
            self.span_log.emit(
                "job_failed", trace_id=trace_id, job_id=record.id, error=str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - a job must never kill the daemon
            record.execute_seconds = time.perf_counter() - started
            self.queue.fail(record, f"{type(exc).__name__}: {exc}")
            with self._lock:
                self.jobs_failed += 1
            self._metric_jobs_failed.inc()
            self.span_log.emit(
                "job_failed",
                trace_id=trace_id,
                job_id=record.id,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            if isinstance(sweep_input, CachedPlane):
                sweep_input.close()
            self._clear_inflight(record.id)
            server = self.socket_server
            if server is not None:
                server.notify_job_finished()

    def _mark_job_inflight(self, record: JobRecord) -> None:
        """Register a claimed job's cell keys as in flight (scheduler thread).

        Cells already persisted are not marked — they will be store hits,
        not duplicate work — so the overlap check only defers jobs on
        genuinely concurrent simulation.  A malformed request marks nothing
        and is left for :meth:`_execute` to fail properly.
        """
        try:
            request = SweepRequest.from_wire(record.request)
            fingerprint = str(record.request.get("trace_fingerprint", ""))
            keys = [job.store_key(fingerprint) for job in request.build_jobs()]
        except (ReproError, KeyError, ValueError, TypeError):
            return
        with self._lock:
            self._inflight_jobs[record.id] = keys
        for key in keys:
            if not self.store.contains(key):
                self.store.mark_in_flight(
                    key,
                    owner=self.daemon_id,
                    ttl_seconds=self.inflight_ttl_seconds,
                )

    def _clear_inflight(self, job_id: str) -> None:
        with self._lock:
            keys = self._inflight_jobs.pop(job_id, [])
        for key in keys:
            self.store.clear_in_flight(key)

    # -- observability -----------------------------------------------------------

    def heartbeat(self) -> Dict[str, Any]:
        """The daemon's current counters (what ``stats`` reports).

        This payload doubles as the lease-renewal attestation: ``pid`` +
        ``host`` feed the liveness pid probe, ``updated_at`` is what
        :meth:`JobQueue.lease_deadline` extends leases from.
        """
        with self._lock:
            inflight = sorted(self._inflight_jobs)
        server = self.socket_server
        return {
            "schema": 1,
            "daemon_id": self.daemon_id,
            "pid": os.getpid(),
            "host": _local_host(),
            "started_at": self._started_at,
            "updated_at": time.time(),
            "lease_seconds": self.lease_seconds,
            "workers": self.workers,
            "sweep_workers": self.sweep_workers,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "cells_executed": self.cells_executed,
            "cells_cached": self.cells_cached,
            "heartbeat_errors": self.heartbeat_errors,
            "socket": str(server.path) if server is not None and server.running else None,
            "inflight_jobs": [job_id[:12] for job_id in inflight],
            "notes": [self._notes[key] for key in sorted(self._notes)],
            "store": self.store.stats(),
            "trace_cache": (
                self.trace_cache.stats() if self.trace_cache is not None else None
            ),
            # The whole process registry rides every heartbeat, so fleet
            # surfaces (`queue stats`, `queue top`, `repro-dew metrics`)
            # aggregate without talking to each daemon's socket.
            "metrics": get_registry().snapshot(),
        }

    def _write_heartbeat(self, note: Optional[str] = None) -> None:
        """Atomically publish the heartbeat; never let it kill the daemon.

        A service root deleted (or made unwritable) underneath a running
        daemon turns renewal failures into a counted, observable condition
        instead of a crash: the daemon keeps draining, ``heartbeat_errors``
        climbs, and operators see the last error in the next heartbeat
        that does land.
        """
        payload = self.heartbeat()
        # The legacy scalar `note` stays populated for old readers: a
        # transient note (startup summary, "stopped") is joined with the
        # sticky degradation notes; a renewal without one backfills from
        # the sticky set instead of erasing it.
        sticky = payload.get("notes") or []
        parts = ([note] if note else []) + [text for text in sticky if text != note]
        if parts:
            payload["note"] = "; ".join(parts)
        if self._last_heartbeat_error:
            payload["last_heartbeat_error"] = self._last_heartbeat_error
        try:
            path = self.queue.heartbeat_path(self.daemon_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_replace(
                path,
                lambda handle: json.dump(payload, handle, sort_keys=True),
                mode="w",
                prefix=".tmp-heartbeat-",
            )
        except (OSError, StoreError) as exc:
            with self._heartbeat_state_lock:
                self.heartbeat_errors += 1
                self._last_heartbeat_error = str(exc)
            self._metric_heartbeat_errors.inc()
        else:
            with self._heartbeat_state_lock:
                self._last_heartbeat_at = time.monotonic()

    def _maybe_heartbeat(self, min_interval: Optional[float] = None) -> None:
        """Heartbeat only if the last one is older than ``min_interval``.

        The default interval is a quarter lease: frequent enough that a
        healthy daemon's lease never approaches expiry, cheap enough to
        call from per-cell progress hooks.
        """
        interval = self.lease_seconds / 4.0 if min_interval is None else min_interval
        with self._heartbeat_state_lock:
            due = time.monotonic() - self._last_heartbeat_at >= interval
        if due:
            self._write_heartbeat()
