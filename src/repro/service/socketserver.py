"""Unix-domain-socket front end for the simulation service.

The polling-file transport (see :mod:`repro.service.api`) is durable and
daemon-optional, but every ``wait`` pays a latency floor of one polling
interval.  This module adds a *low-latency* path on the same versioned JSON
envelopes: each daemon binds ``<root>/sockets/<daemon_id>.sock`` and serves
the client operations over newline-delimited JSON, so ``submit`` /
``status`` / ``result`` / ``wait`` become one round trip and a waiting
client is woken the moment the daemon finishes the job instead of on its
next poll.

Wire format: one JSON object per line in each direction, over a persistent
connection.  Requests are ``{"wire": 1, "op": <name>, ...}``; responses are
exactly the envelopes the polling transport produces (``ok_response`` /
``error_response``), so a client can take either path and see identical
payloads.  The socket is an accelerator, never a requirement — clients fall
back to polling files whenever no live socket is found, and every mutation
the server performs goes through the same durable :class:`JobQueue`
primitives the file path uses.

The server side runs as a daemon thread inside :class:`ServiceDaemon`; a
daemon that cannot bind its socket (path length limits, exotic platforms)
logs the fact in its heartbeat and keeps serving the polling transport.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.obs.metrics import get_registry, render_exposition
from repro.service.queue import (
    STATE_FAILED,
    TERMINAL_STATES,
    JobQueue,
)

#: Suffix of per-daemon socket files under ``<root>/sockets/``.
SOCKET_SUFFIX = ".sock"

#: Interval at which a server-side ``wait`` re-reads the job record even
#: without a local completion notification — this is what resolves waits
#: for jobs a *peer* daemon finishes (the peer cannot wake our waiters).
_WAIT_RECHECK_SECONDS = 0.05

#: Safety cap on a single request line (a submit request with a large cell
#: digest list is ~100 bytes per cell; 8 MiB is orders of magnitude above
#: any real grid).
_MAX_LINE_BYTES = 8 * 1024 * 1024


def send_message(handle, payload: Dict[str, Any]) -> None:
    """Write one newline-delimited JSON message."""
    handle.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")
    handle.flush()


def recv_message(handle) -> Optional[Dict[str, Any]]:
    """Read one newline-delimited JSON message (``None`` on EOF)."""
    line = handle.readline(_MAX_LINE_BYTES)
    if not line:
        return None
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("socket message must be a JSON object")
    return payload


class ServiceSocketServer:
    """One daemon's socket listener, serving client ops over its queue.

    Runs the accept loop in a daemon thread plus one thread per connection.
    All state mutations go through the shared durable :class:`JobQueue`, so
    a socket-served submit is indistinguishable on disk from a file-path
    one.  ``stats_source`` (the owning daemon's live counters) is consulted
    by the ``stats`` op so socket clients see the same heartbeat the file
    transport reads from disk.
    """

    def __init__(
        self,
        queue: JobQueue,
        daemon_id: str,
        stats_source: Optional[Any] = None,
    ) -> None:
        self.queue = queue
        self.daemon_id = str(daemon_id)
        self.stats_source = stats_source
        self.path: Path = queue.sockets_dir() / (self.daemon_id + SOCKET_SUFFIX)
        self.requests_served = 0
        self._metric_requests = get_registry().counter(
            "socket_requests_total", help="Requests answered over daemon sockets."
        )
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = False
        self._finish_cond = threading.Condition()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the listener is bound and accepting."""
        return self._listener is not None and not self._stopping

    def start(self) -> None:
        """Bind the socket and start accepting; raises ``ServiceError`` on failure."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self.path.unlink()  # a stale socket from a dead previous life
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self.path))
            listener.listen(16)
            listener.settimeout(0.2)
        except OSError as exc:
            raise ServiceError(
                f"could not bind service socket {self.path}: {exc}"
            ) from exc
        self._listener = listener
        self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"svc-sock-{self.daemon_id}", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting, close the listener and remove the socket file."""
        self._stopping = True
        with self._finish_cond:
            self._finish_cond.notify_all()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        try:
            self.path.unlink()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def notify_job_finished(self) -> None:
        """Wake blocked ``wait`` handlers (called by the daemon per finished job)."""
        with self._finish_cond:
            self._finish_cond.notify_all()

    # -- server loops ------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping and listener is not None:
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during stop()
            threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        from repro.service.api import error_response

        try:
            connection.settimeout(None)
            handle = connection.makefile("rwb")
            while not self._stopping:
                try:
                    request = recv_message(handle)
                except (ValueError, OSError):
                    break
                if request is None:
                    break
                try:
                    response = self._dispatch(request)
                except ServiceError as exc:
                    response = error_response(exc)
                except Exception as exc:  # noqa: BLE001 - a request must not kill the server
                    response = error_response(f"{type(exc).__name__}: {exc}")
                try:
                    send_message(handle, response)
                except OSError:
                    break
                self.requests_served += 1
                self._metric_requests.inc()
        finally:
            try:
                connection.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.service.api import (
            SERVICE_WIRE_VERSION,
            ok_response,
            record_to_wire,
            service_stats,
        )

        if request.get("wire") != SERVICE_WIRE_VERSION:
            raise ServiceError(
                f"socket request uses wire version {request.get('wire')!r}; "
                f"this daemon speaks version {SERVICE_WIRE_VERSION}"
            )
        op = request.get("op")
        if op == "ping":
            return ok_response("pong", daemon_id=self.daemon_id)
        if op == "submit":
            job_id = str(request["job_id"])
            record, deduped = self.queue.submit(
                job_id,
                dict(request["request"]),
                priority=int(request.get("priority", 0)),
            )
            return ok_response(
                "submit",
                job_id=record.id,
                state=record.state,
                deduped=deduped,
                priority=record.priority,
                trace_id=str(record.request.get("trace_id", "")) or None,
            )
        if op == "status":
            record = self.queue.find(str(request["job"]))
            return ok_response("status", job=record_to_wire(record))
        if op == "result":
            payload = self.queue.result_text(str(request["job"]))
            return ok_response("result", payload=payload)
        if op == "cancel":
            record = self.queue.cancel(str(request["job"]))
            return ok_response(
                "cancel",
                job=record_to_wire(record),
                requested=record.state == "running",
            )
        if op == "stats":
            return self._stats_response(service_stats)
        if op == "metrics":
            return self._metrics_response(request, ok_response)
        if op == "wait":
            return self._handle_wait(request, ok_response, record_to_wire)
        raise ServiceError(f"unknown socket operation {op!r}")

    def _metrics_response(self, request: Dict[str, Any], ok_response) -> Dict[str, Any]:
        """This daemon process's live metrics registry.

        ``format: "json"`` (the default) answers with the canonical
        snapshot; ``format: "text"`` renders the Prometheus-style
        exposition, so the socket can be scraped with nothing but
        ``nc -U`` and one JSON line.
        """
        fmt = str(request.get("format", "json"))
        snapshot = get_registry().snapshot()
        if fmt == "text":
            return ok_response(
                "metrics",
                daemon_id=self.daemon_id,
                format="text",
                exposition=render_exposition(snapshot),
            )
        if fmt != "json":
            raise ServiceError(f"unknown metrics format {fmt!r} (json or text)")
        return ok_response(
            "metrics", daemon_id=self.daemon_id, format="json", metrics=snapshot
        )

    def _stats_response(self, service_stats) -> Dict[str, Any]:
        """Fleet stats with this daemon's entry refreshed from live counters.

        Heartbeat files lag by up to a renewal interval; a socket client
        asking the daemon directly deserves the daemon's current numbers.
        """
        from repro.service.api import _heartbeat_updated_at

        response = service_stats(self.queue)
        source = self.stats_source
        if source is None:
            return response
        try:
            live = dict(source.heartbeat())
        except Exception:  # noqa: BLE001 - stats must degrade, not fail
            return response
        live["alive"] = True
        daemons = dict(response.get("daemons", {}))
        daemons[self.daemon_id] = live
        response["daemons"] = daemons
        response["live_daemons"] = sum(
            1 for entry in daemons.values() if entry.get("alive")
        )
        response["daemon"] = max(daemons.values(), key=_heartbeat_updated_at)
        return response

    def _handle_wait(self, request, ok_response, record_to_wire) -> Dict[str, Any]:
        """Block until the job is terminal (or failed), then answer.

        The fast path is the owning daemon's ``notify_job_finished`` call;
        the periodic re-check covers jobs finished by peer daemons and a
        server shutting down mid-wait.
        """
        job_id = str(request["job"])
        timeout = float(request.get("timeout", 60.0))
        deadline = time.monotonic() + timeout
        while True:
            record = self.queue.find(job_id)
            if record.state in TERMINAL_STATES or record.state == STATE_FAILED:
                return ok_response("wait", job=record_to_wire(record))
            if self._stopping:
                raise ServiceError("daemon is shutting down; retry over polling")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{record.id[:12]} (state: {record.state})"
                )
            with self._finish_cond:
                self._finish_cond.wait(min(_WAIT_RECHECK_SECONDS, remaining))


class SocketTransport:
    """Client side of the socket protocol: one connection, serial requests.

    Thread-safe (requests are serialized on a lock).  Any transport-level
    failure raises ``OSError``/``ValueError`` to the caller, which is the
    :class:`~repro.service.api.ServiceClient`'s cue to fall back to the
    polling-file path; protocol-level errors (``{"ok": false}``) surface as
    :class:`~repro.errors.ServiceError` exactly like file-path failures.
    """

    def __init__(self, path: Path, connect_timeout: float = 0.5) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(str(self.path))
        except OSError:
            self._sock.close()
            raise
        self._handle = self._sock.makefile("rwb")

    def request(
        self, payload: Dict[str, Any], timeout: Optional[float] = 30.0
    ) -> Dict[str, Any]:
        """One request/response round trip (raises ``OSError`` on dead sockets)."""
        with self._lock:
            self._sock.settimeout(timeout)
            send_message(self._handle, payload)
            response = recv_message(self._handle)
        if response is None:
            raise OSError("service socket closed by the daemon")
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def discover_socket(
    queue: JobQueue, connect_timeout: float = 0.5
) -> Optional[SocketTransport]:
    """Connect to any live daemon socket of the service, or ``None``.

    Tries every ``sockets/*.sock`` entry (sorted for determinism), verifying
    liveness with a ``ping`` — a stale socket file left by a SIGKILLed
    daemon fails to connect (or to answer) and is skipped.
    """
    directory = queue.sockets_dir()
    if not directory.is_dir():
        return None
    from repro.service.api import SERVICE_WIRE_VERSION

    for path in sorted(directory.glob("*" + SOCKET_SUFFIX)):
        try:
            transport = SocketTransport(path, connect_timeout=connect_timeout)
        except OSError:
            continue
        try:
            response = transport.request(
                {"wire": SERVICE_WIRE_VERSION, "op": "ping"}, timeout=connect_timeout
            )
            if response.get("ok") and response.get("type") == "pong":
                return transport
        except (OSError, ValueError):
            pass
        transport.close()
    return None


def remove_stale_sockets(queue: JobQueue) -> int:
    """Unlink socket files no daemon answers on; returns how many."""
    directory = queue.sockets_dir()
    if not directory.is_dir():
        return 0
    from repro.service.api import SERVICE_WIRE_VERSION

    removed = 0
    for path in sorted(directory.glob("*" + SOCKET_SUFFIX)):
        try:
            transport = SocketTransport(path, connect_timeout=0.25)
        except OSError:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            continue
        try:
            transport.request(
                {"wire": SERVICE_WIRE_VERSION, "op": "ping"}, timeout=0.25
            )
        except (OSError, ValueError):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        finally:
            transport.close()
    return removed


__all__ = [
    "SOCKET_SUFFIX",
    "ServiceSocketServer",
    "SocketTransport",
    "discover_socket",
    "recv_message",
    "remove_stale_sockets",
    "send_message",
]
