"""repro: a reproduction of DEW, the single-pass multi-configuration FIFO
L1 cache simulator of Haque et al. (DATE 2010).

The package is organised by subsystem (see ``DESIGN.md`` for the full
inventory):

* :mod:`repro.core` — the DEW simulator itself (binomial simulation tree,
  wave pointers, MRA/MRE shortcuts) and the configuration space.
* :mod:`repro.cache` — a conventional single-configuration reference
  simulator with pluggable replacement policies (the Dinero IV stand-in).
* :mod:`repro.lru` — single-pass LRU baselines (Janapsatya-style simulator,
  CRCB-style pruning, stack distances).
* :mod:`repro.trace` — trace containers, file formats, statistics, filters.
* :mod:`repro.workloads` — synthetic Mediabench-style workload generators.
* :mod:`repro.explore` — energy model, Pareto fronts and cache tuning.
* :mod:`repro.engine` — the uniform engine layer: every simulator behind one
  ``run_blocks``/``finalize`` protocol, a string-keyed registry
  (``get_engine("dew", ...)``) and a process-parallel sweep orchestrator.
* :mod:`repro.store` — content-addressed persistent result store; sweeps
  routed through it are incremental and resumable (``open_store(path)``).
* :mod:`repro.bench` — the harness regenerating the paper's tables/figures.
* :mod:`repro.verify` — exact-match cross-checking between simulators.

Quickstart
----------
>>> from repro import DewSimulator, mediabench_trace
>>> trace = mediabench_trace("cjpeg", 10_000)
>>> results = DewSimulator(block_size=16, associativity=4,
...                        set_sizes=(1, 2, 4, 8, 16, 32)).run(trace)
>>> len(results)            # 6 four-way + 6 direct-mapped configurations
12
"""

from repro._version import __version__
from repro.core.config import CacheConfig, ConfigSpace
from repro.core.counters import DewCounters
from repro.core.dew import DewSimulator, simulate_fifo_family
from repro.core.results import ConfigResult, ResultsFrame, SimulationResults
from repro.core.tree import DewTree
from repro.cache.dinero import DineroRunResult, DineroStyleRunner
from repro.cache.simulator import SingleConfigSimulator, simulate_trace
from repro.cache.stats import CacheStats
from repro.engine import (
    Engine,
    FusedSweepExecutor,
    SweepJob,
    SweepOutcome,
    available_engines,
    build_grid_jobs,
    get_engine,
    register_engine,
    run_sweep,
)
from repro.lru.janapsatya import JanapsatyaSimulator, simulate_lru_family
from repro.store import ResultStore, StoreKey, open_store
from repro.trace.trace import Trace, TraceBuilder
from repro.trace.din import read_din, write_din
from repro.types import AccessType, ReplacementPolicy
from repro.verify.crosscheck import cross_check, cross_check_space
from repro.workloads.mediabench import MEDIABENCH_APPS, mediabench_trace
from repro.explore.tuner import CacheTuner, TuningConstraints

__all__ = [
    "__version__",
    "CacheConfig",
    "ConfigSpace",
    "DewCounters",
    "DewSimulator",
    "simulate_fifo_family",
    "ConfigResult",
    "ResultsFrame",
    "SimulationResults",
    "DewTree",
    "DineroRunResult",
    "DineroStyleRunner",
    "SingleConfigSimulator",
    "simulate_trace",
    "CacheStats",
    "Engine",
    "available_engines",
    "get_engine",
    "register_engine",
    "SweepJob",
    "SweepOutcome",
    "build_grid_jobs",
    "run_sweep",
    "FusedSweepExecutor",
    "JanapsatyaSimulator",
    "simulate_lru_family",
    "ResultStore",
    "StoreKey",
    "open_store",
    "Trace",
    "TraceBuilder",
    "read_din",
    "write_din",
    "AccessType",
    "ReplacementPolicy",
    "cross_check",
    "cross_check_space",
    "MEDIABENCH_APPS",
    "mediabench_trace",
    "CacheTuner",
    "TuningConstraints",
]
