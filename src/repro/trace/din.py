"""Dinero IV ``.din`` trace format.

The ``.din`` format is the classic text format consumed by Dinero: one access
per line, ``<label> <hex-address>``, where the label is ``0`` (read), ``1``
(write) or ``2`` (instruction fetch).  Blank lines and ``#`` comments are
tolerated on input.
"""

from __future__ import annotations

import os
from typing import Iterable, TextIO, Union

from repro.errors import TraceFormatError
from repro.trace.trace import StreamingTraceBuilder, Trace
from repro.types import AccessType

_LABEL_TO_TYPE = {
    "0": AccessType.READ,
    "1": AccessType.WRITE,
    "2": AccessType.INSTR_FETCH,
    "r": AccessType.READ,
    "w": AccessType.WRITE,
    "i": AccessType.INSTR_FETCH,
}

_TYPE_TO_LABEL = {
    AccessType.READ: "0",
    AccessType.WRITE: "1",
    AccessType.INSTR_FETCH: "2",
}


def _parse_lines(lines: Iterable[str], source: str) -> Trace:
    """Parse an iterable of lines, streaming accesses into numpy chunks."""
    name = os.path.splitext(os.path.basename(source))[0] or "din"
    builder = StreamingTraceBuilder(name=name)
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise TraceFormatError(
                f"{source}:{line_number}: expected '<label> <hex-address>', got {raw!r}"
            )
        label, address_text = parts[0].lower(), parts[1]
        try:
            access_type = _LABEL_TO_TYPE[label]
        except KeyError as exc:
            raise TraceFormatError(
                f"{source}:{line_number}: unknown access label {parts[0]!r}"
            ) from exc
        try:
            address = int(address_text, 16)
        except ValueError as exc:
            raise TraceFormatError(
                f"{source}:{line_number}: invalid hexadecimal address {address_text!r}"
            ) from exc
        builder.add(address, int(access_type))
    return builder.build()


def read_din(path_or_file: Union[str, os.PathLike, TextIO]) -> Trace:
    """Read a Dinero ``.din`` trace from a path or an open text file.

    Lines are consumed one at a time: the whole file is never materialised
    as Python objects (see :class:`~repro.trace.trace.StreamingTraceBuilder`).
    """
    if hasattr(path_or_file, "read"):
        source = getattr(path_or_file, "name", "<stream>")
        return _parse_lines(path_or_file, str(source))
    with open(path_or_file, "r", encoding="ascii") as handle:
        return _parse_lines(handle, str(path_or_file))


def write_din(trace: Trace, path_or_file: Union[str, os.PathLike, TextIO]) -> None:
    """Write ``trace`` in Dinero ``.din`` format."""

    def _write(handle: TextIO) -> None:
        for address, access_type in zip(trace.addresses, trace.access_types):
            label = _TYPE_TO_LABEL[AccessType(int(access_type))]
            handle.write(f"{label} {int(address):x}\n")

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
        return
    with open(path_or_file, "w", encoding="ascii") as handle:
        _write(handle)
