"""A single memory reference.

:class:`MemoryAccess` is the scalar element of a :class:`~repro.trace.trace.Trace`.
Bulk simulation never materialises one object per reference (that would be
prohibitively slow for multi-million-entry traces); the record type exists for
readable construction, file parsing and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError
from repro.types import AccessType, Address


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by the traced program.

    Parameters
    ----------
    address:
        Byte address of the reference.  Must be non-negative.
    access_type:
        Read, write or instruction fetch.  The DEW paper's level-1 analysis
        is policy-only (allocate-on-miss for every reference type), so the
        type only matters for trace filtering and statistics.
    size:
        Size of the reference in bytes (defaults to 4, the word size of the
        SimpleScalar/PISA traces used in the paper).
    """

    address: Address
    access_type: AccessType = AccessType.READ
    size: int = 4

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"negative address in trace: {self.address}")
        if self.size <= 0:
            raise TraceError(f"non-positive access size: {self.size}")

    def block_address(self, block_size: int) -> int:
        """Return the block address of this access for ``block_size`` bytes."""
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError(f"block size must be a power of two, got {block_size}")
        return self.address >> (block_size.bit_length() - 1)

    def as_din_line(self) -> str:
        """Render this access as one line of a Dinero ``.din`` trace."""
        label = {AccessType.READ: 0, AccessType.WRITE: 1, AccessType.INSTR_FETCH: 2}
        return f"{label[self.access_type]} {self.address:x}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.access_type.symbol} 0x{self.address:x} ({self.size}B)"
