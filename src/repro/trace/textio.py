"""Plain-text trace formats.

Two formats are supported:

* *hex list* — one hexadecimal address per line (all accesses treated as
  reads), convenient for hand-written test inputs;
* *CSV* — ``address,type,size`` rows with a header, round-tripping the full
  access information.
"""

from __future__ import annotations

import csv
import itertools
import os
from typing import Iterable, Iterator, TextIO, Union

from repro.errors import TraceFormatError
from repro.trace.trace import StreamingTraceBuilder, Trace
from repro.types import AccessType


def read_text_trace(path_or_file: Union[str, os.PathLike, TextIO]) -> Trace:
    """Read a trace from either the hex-list or the CSV text format.

    The format is auto-detected: a first non-empty line containing a comma is
    treated as CSV, anything else as a hex list.  Lines are consumed one at a
    time, so the whole file is never held as Python objects.
    """
    if hasattr(path_or_file, "read"):
        source = str(getattr(path_or_file, "name", "<stream>"))
        return _read_stream(path_or_file, source)
    with open(path_or_file, "r", encoding="ascii") as handle:
        return _read_stream(handle, str(path_or_file))


def _meaningful_lines(lines: Iterable[str]) -> Iterator[str]:
    for line in lines:
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            yield line


def _read_stream(lines: Iterable[str], source: str) -> Trace:
    meaningful = _meaningful_lines(lines)
    first = next(meaningful, None)
    if first is None:
        return Trace.empty(name=os.path.splitext(os.path.basename(source))[0] or "text")
    rest = itertools.chain([first], meaningful)
    if "," in first:
        return _read_csv(rest, source)
    return _read_hex_list(rest, source)


def _read_hex_list(lines: Iterable[str], source: str) -> Trace:
    name = os.path.splitext(os.path.basename(source))[0] or "text"
    builder = StreamingTraceBuilder(name=name)
    for line_number, line in enumerate(lines, start=1):
        token = line.strip()
        try:
            builder.add(int(token, 16))
        except ValueError as exc:
            raise TraceFormatError(
                f"{source}:{line_number}: invalid hexadecimal address {token!r}"
            ) from exc
    return builder.build()


def _read_csv(lines: Iterable[str], source: str) -> Trace:
    reader = csv.DictReader(lines)
    if reader.fieldnames is None or "address" not in reader.fieldnames:
        raise TraceFormatError(f"{source}: CSV trace must have an 'address' column")
    name = os.path.splitext(os.path.basename(source))[0] or "csv"
    builder = StreamingTraceBuilder(name=name)
    for row_number, row in enumerate(reader, start=2):
        try:
            address = int(row["address"], 0)
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"{source}:{row_number}: bad address {row.get('address')!r}") from exc
        type_text = (row.get("type") or "r").strip()
        try:
            access_type = int(AccessType.from_symbol(type_text))
        except ValueError as exc:
            raise TraceFormatError(f"{source}:{row_number}: bad access type {type_text!r}") from exc
        size_text = (row.get("size") or "4").strip()
        try:
            size = int(size_text)
        except ValueError as exc:
            raise TraceFormatError(f"{source}:{row_number}: bad size {size_text!r}") from exc
        builder.add(address, access_type, size)
    return builder.build()


def write_text_trace(
    trace: Trace,
    path_or_file: Union[str, os.PathLike, TextIO],
    fmt: str = "csv",
) -> None:
    """Write ``trace`` as ``fmt`` (``"csv"`` or ``"hex"``)."""
    if fmt not in ("csv", "hex"):
        raise ValueError(f"unknown text trace format: {fmt!r}")

    def _write(handle: TextIO) -> None:
        if fmt == "hex":
            for address in trace.addresses:
                handle.write(f"{int(address):x}\n")
            return
        writer = csv.writer(handle)
        writer.writerow(["address", "type", "size"])
        for address, access_type, size in zip(trace.addresses, trace.access_types, trace.sizes):
            writer.writerow([f"0x{int(address):x}", AccessType(int(access_type)).symbol, int(size)])

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
        return
    with open(path_or_file, "w", encoding="ascii", newline="") as handle:
        _write(handle)
