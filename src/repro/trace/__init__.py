"""Memory-trace substrate: records, containers, file formats and statistics.

A *trace* is the sequence of memory addresses issued by an application run.
Every simulator in this package (DEW, the Dinero-style baseline and the LRU
single-pass simulators) consumes a :class:`~repro.trace.trace.Trace`.

The sub-modules are:

``record``
    :class:`MemoryAccess`, a single reference (address, type, size).
``trace``
    :class:`Trace`, a numpy-backed immutable sequence of accesses.
``din``
    Reader/writer for the Dinero IV ``.din`` text format the paper's
    baseline consumes.
``textio``
    Plain hexadecimal / CSV trace files.
``files``
    Format- and compression-aware file loading (the CLI/service entry
    point over ``din`` and ``textio``).
``stats``
    Working-set, reuse-distance and block-reuse statistics.
``filters``
    Splitting and filtering (instruction vs data, reads vs writes, windows).
"""

from repro.trace.record import MemoryAccess
from repro.trace.trace import Trace, TraceBuilder, collapse_block_runs
from repro.trace.din import read_din, write_din
from repro.trace.files import load_trace_file
from repro.trace.textio import read_text_trace, write_text_trace
from repro.trace.stats import TraceStatistics, compute_trace_statistics
from repro.trace.filters import (
    filter_by_type,
    split_instruction_data,
    window,
    unique_block_trace,
)

__all__ = [
    "MemoryAccess",
    "Trace",
    "TraceBuilder",
    "collapse_block_runs",
    "read_din",
    "write_din",
    "load_trace_file",
    "read_text_trace",
    "write_text_trace",
    "TraceStatistics",
    "compute_trace_statistics",
    "filter_by_type",
    "split_instruction_data",
    "window",
    "unique_block_trace",
]
