"""The :class:`Trace` container.

A trace is stored as parallel numpy arrays (addresses, access types, sizes)
so that multi-hundred-thousand-entry traces are cheap to hold, slice and
feed to simulators.  The preferred consumption path is
:meth:`Trace.iter_block_chunks`, which shifts addresses to block addresses
with one vectorised numpy operation per chunk instead of one Python ``>>``
per access; :meth:`Trace.address_list` remains for per-address drivers and
is memoized so repeated runs stop re-converting the ndarray.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.record import MemoryAccess
from repro.types import AccessType, Address

#: Chunk length used by the block pipeline when the caller does not choose one.
DEFAULT_CHUNK_SIZE = 65_536


def collapse_block_runs(blocks: Union[Sequence[int], np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Fold consecutive duplicate block addresses into ``(values, counts)``.

    One vectorised pass: ``values`` holds the first block of every maximal
    run of equal consecutive addresses, ``counts`` its length, so
    ``np.repeat(values, counts)`` reconstructs the input exactly.  This is
    the run-length collapse stage of the fused pipeline: for DEW an
    immediately-repeated block is an MRA hit at the tree root — a hit in
    *every* simulated configuration — so a consumer only needs to walk each
    run's head and can account the remaining ``count - 1`` accesses in bulk
    (see :meth:`repro.core.dew.DewSimulator.run_block_runs`).

    Collapsing chunk-by-chunk is safe: a run split across two chunks simply
    yields two runs with the same head block, and re-walking the second head
    costs (and counts) exactly what one more bulk duplicate would.
    """
    arr = np.asarray(blocks, dtype=np.int64)
    if arr.ndim != 1:
        raise TraceError("block addresses must be one-dimensional")
    if arr.size == 0:
        return arr, np.empty(0, dtype=np.int64)
    boundaries = np.empty(arr.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(arr[1:], arr[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    counts = np.diff(np.append(starts, arr.size))
    return arr[starts], counts


class Trace:
    """An immutable sequence of memory accesses.

    Parameters
    ----------
    addresses:
        Byte addresses, one per access.
    access_types:
        Optional per-access types; defaults to all reads.
    sizes:
        Optional per-access sizes in bytes; defaults to 4.
    name:
        Human-readable label (e.g. the workload name) used in reports.
    """

    def __init__(
        self,
        addresses: Union[Sequence[int], np.ndarray],
        access_types: Optional[Union[Sequence[int], np.ndarray]] = None,
        sizes: Optional[Union[Sequence[int], np.ndarray]] = None,
        name: str = "trace",
    ) -> None:
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.ndim != 1:
            raise TraceError("addresses must be a one-dimensional sequence")
        if addr.size and addr.min() < 0:
            raise TraceError("trace contains a negative address")
        if access_types is None:
            types = np.full(addr.shape, int(AccessType.READ), dtype=np.int8)
        else:
            types = np.asarray(access_types, dtype=np.int8)
            if types.shape != addr.shape:
                raise TraceError("access_types length does not match addresses")
        if sizes is None:
            size_arr = np.full(addr.shape, 4, dtype=np.int16)
        else:
            size_arr = np.asarray(sizes, dtype=np.int16)
            if size_arr.shape != addr.shape:
                raise TraceError("sizes length does not match addresses")
            if size_arr.size and size_arr.min() <= 0:
                raise TraceError("trace contains a non-positive access size")
        self._addresses = addr
        self._types = types
        self._sizes = size_arr
        self.name = name
        self._addresses.setflags(write=False)
        self._types.setflags(write=False)
        self._sizes.setflags(write=False)
        self._address_list_cache: Optional[List[int]] = None
        self._block_address_cache: Dict[int, np.ndarray] = {}
        self._fingerprint_cache: Optional[str] = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of :class:`MemoryAccess` records."""
        records = list(accesses)
        return cls(
            [record.address for record in records],
            [int(record.access_type) for record in records],
            [record.size for record in records],
            name=name,
        )

    @classmethod
    def empty(cls, name: str = "empty") -> "Trace":
        """Return a zero-length trace."""
        return cls(np.empty(0, dtype=np.int64), name=name)

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._addresses.size)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for address, access_type, size in zip(self._addresses, self._types, self._sizes):
            yield MemoryAccess(int(address), AccessType(int(access_type)), int(size))

    def __getitem__(self, index: Union[int, slice]) -> Union[MemoryAccess, "Trace"]:
        if isinstance(index, slice):
            return Trace(
                self._addresses[index],
                self._types[index],
                self._sizes[index],
                name=self.name,
            )
        return MemoryAccess(
            int(self._addresses[index]),
            AccessType(int(self._types[index])),
            int(self._sizes[index]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            np.array_equal(self._addresses, other._addresses)
            and np.array_equal(self._types, other._types)
            and np.array_equal(self._sizes, other._sizes)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(name={self.name!r}, length={len(self)})"

    def __getstate__(self) -> Dict[str, object]:
        # Caches are cheap to rebuild and can dwarf the arrays themselves;
        # keep worker pickles (multiprocessing sweeps) lean.
        state = dict(self.__dict__)
        state["_address_list_cache"] = None
        state["_block_address_cache"] = {}
        return state

    # -- array views ----------------------------------------------------------

    @property
    def addresses(self) -> np.ndarray:
        """Byte addresses as a read-only ``int64`` array."""
        return self._addresses

    @property
    def access_types(self) -> np.ndarray:
        """Per-access :class:`~repro.types.AccessType` values (as ``int8``)."""
        return self._types

    @property
    def sizes(self) -> np.ndarray:
        """Per-access sizes in bytes."""
        return self._sizes

    def address_list(self) -> List[int]:
        """Addresses as a plain Python list (fastest form for simulator loops).

        The conversion is memoized: repeated simulator runs over the same
        trace reuse one list instead of re-converting the ndarray each time.
        The returned list is shared — treat it as read-only and copy before
        mutating (``list(trace.address_list())``).
        """
        if self._address_list_cache is None:
            self._address_list_cache = self._addresses.tolist()
        return self._address_list_cache

    def block_addresses(self, block_size: int) -> np.ndarray:
        """Block addresses of every access for the given block size (memoized)."""
        if block_size <= 0 or block_size & (block_size - 1):
            raise TraceError(f"block size must be a power of two, got {block_size}")
        offset_bits = block_size.bit_length() - 1
        cached = self._block_address_cache.get(offset_bits)
        if cached is None:
            cached = self._addresses >> offset_bits
            cached.setflags(write=False)
            self._block_address_cache[offset_bits] = cached
        return cached

    def iter_block_chunks(
        self,
        offset_bits: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        with_types: bool = False,
    ) -> Iterator[Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]]:
        """Yield pre-shifted block-address chunks for the engine pipeline.

        Each chunk is an ``int64`` ndarray of ``chunk_size`` block addresses
        (the final chunk may be shorter), produced with one vectorised shift
        instead of one Python-level ``>>`` per access.  With ``with_types``
        the per-access :class:`~repro.types.AccessType` codes ride along as a
        second array.
        """
        if offset_bits < 0:
            raise TraceError(f"offset_bits must be non-negative, got {offset_bits}")
        if chunk_size < 1:
            raise TraceError(f"chunk size must be positive, got {chunk_size}")
        length = self._addresses.size
        for start in range(0, length, chunk_size):
            stop = min(start + chunk_size, length)
            blocks = self._addresses[start:stop] >> offset_bits
            if with_types:
                yield blocks, self._types[start:stop]
            else:
                yield blocks

    def iter_block_runs(
        self,
        offset_bits: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield run-length-collapsed block-address chunks.

        Each yielded pair is ``(values, counts)`` produced by
        :func:`collapse_block_runs` over one :meth:`iter_block_chunks` chunk:
        consecutive accesses landing in the same block collapse into one
        entry with a count.  Runs are never merged across chunk boundaries
        (the consumers' bulk accounting makes the split exact), so
        ``chunk_size`` governs memory exactly as in the raw pipeline.
        """
        for blocks in self.iter_block_chunks(offset_bits, chunk_size):
            yield collapse_block_runs(blocks)

    def fingerprint(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> str:
        """Content digest of the trace (addresses, types and sizes).

        A streaming SHA-256 over the packed arrays, fed ``chunk_size``
        entries at a time so multi-hundred-million-access traces never need
        a monolithic byte copy.  The digest covers content only — not the
        trace's name — so renamed copies of the same access stream share one
        fingerprint, which is what makes the persistent result store
        content-addressed.  Memoized per instance (and kept through
        pickling, so sweep workers inherit it for free).
        """
        if self._fingerprint_cache is None:
            digest = hashlib.sha256()
            digest.update(b"repro-trace-v1:")
            digest.update(str(len(self)).encode("ascii"))
            for array in (self._addresses, self._types, self._sizes):
                digest.update(b"|" + array.dtype.str.encode("ascii") + b":")
                for start in range(0, array.size, chunk_size):
                    chunk = np.ascontiguousarray(array[start:start + chunk_size])
                    digest.update(chunk.tobytes())
            self._fingerprint_cache = digest.hexdigest()
        return self._fingerprint_cache

    def seed_fingerprint(self, fingerprint: str) -> None:
        """Install an externally-known content digest into the memo.

        Used by :func:`~repro.trace.files.load_trace_file` when a validated
        ``(path, mtime, size)`` sidecar already knows the file's fingerprint,
        so a warm load skips the full-array hash.  Only seed digests that
        were originally computed by :meth:`fingerprint` over this same
        content; an already-computed memo is never overwritten.
        """
        if self._fingerprint_cache is None:
            self._fingerprint_cache = str(fingerprint)

    def unique_blocks(self, block_size: int) -> int:
        """Number of distinct blocks touched at the given block size."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.block_addresses(block_size)).size)

    # -- simple transformations ----------------------------------------------

    def concatenate(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Return a new trace consisting of this trace followed by ``other``."""
        return Trace(
            np.concatenate([self._addresses, other._addresses]),
            np.concatenate([self._types, other._types]),
            np.concatenate([self._sizes, other._sizes]),
            name=name or f"{self.name}+{other.name}",
        )

    def repeat(self, count: int, name: Optional[str] = None) -> "Trace":
        """Return this trace repeated ``count`` times back to back."""
        if count < 0:
            raise TraceError("repeat count must be non-negative")
        return Trace(
            np.tile(self._addresses, count),
            np.tile(self._types, count),
            np.tile(self._sizes, count),
            name=name or f"{self.name}x{count}",
        )

    def with_name(self, name: str) -> "Trace":
        """Return a shallow copy of this trace under a different name."""
        return Trace(self._addresses, self._types, self._sizes, name=name)


class TraceBuilder:
    """Incremental builder used by workload generators and parsers.

    Appending to Python lists and converting once is far cheaper than
    repeatedly concatenating numpy arrays.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._addresses: List[int] = []
        self._types: List[int] = []
        self._sizes: List[int] = []

    def __len__(self) -> int:
        return len(self._addresses)

    def add(
        self,
        address: Address,
        access_type: AccessType = AccessType.READ,
        size: int = 4,
    ) -> None:
        """Append one access."""
        if address < 0:
            raise TraceError(f"negative address in trace: {address}")
        self._addresses.append(int(address))
        self._types.append(int(access_type))
        self._sizes.append(int(size))

    def add_access(self, access: MemoryAccess) -> None:
        """Append a pre-built :class:`MemoryAccess`."""
        self.add(access.address, access.access_type, access.size)

    def extend_addresses(
        self,
        addresses: Iterable[int],
        access_type: AccessType = AccessType.READ,
        size: int = 4,
    ) -> None:
        """Append many addresses sharing one access type and size."""
        for address in addresses:
            self.add(address, access_type, size)

    def build(self) -> Trace:
        """Freeze the builder into an immutable :class:`Trace`."""
        return Trace(self._addresses, self._types, self._sizes, name=self.name)


class StreamingTraceBuilder:
    """Bounded-memory trace assembly for streaming file readers.

    Accesses are buffered in plain Python lists only up to ``chunk_size``
    entries; each full buffer is flushed to packed numpy arrays, so parsing a
    multi-million-line trace file never holds the whole file's worth of
    Python objects at once.
    """

    def __init__(self, name: str = "trace", chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise TraceError(f"chunk size must be positive, got {chunk_size}")
        self.name = name
        self._chunk_size = chunk_size
        self._addresses: List[int] = []
        self._types: List[int] = []
        self._sizes: List[int] = []
        self._address_chunks: List[np.ndarray] = []
        self._type_chunks: List[np.ndarray] = []
        self._size_chunks: List[np.ndarray] = []
        self._flushed = 0

    def __len__(self) -> int:
        return self._flushed + len(self._addresses)

    def add(self, address: int, access_type: int = int(AccessType.READ), size: int = 4) -> None:
        """Append one access; flushes the buffer when it reaches the chunk size."""
        if address < 0:
            raise TraceError(f"negative address in trace: {address}")
        self._addresses.append(int(address))
        self._types.append(int(access_type))
        self._sizes.append(int(size))
        if len(self._addresses) >= self._chunk_size:
            self._flush()

    def _flush(self) -> None:
        if not self._addresses:
            return
        self._address_chunks.append(np.asarray(self._addresses, dtype=np.int64))
        self._type_chunks.append(np.asarray(self._types, dtype=np.int8))
        self._size_chunks.append(np.asarray(self._sizes, dtype=np.int16))
        self._flushed += len(self._addresses)
        self._addresses = []
        self._types = []
        self._sizes = []

    def build(self) -> Trace:
        """Concatenate the flushed chunks into an immutable :class:`Trace`."""
        self._flush()
        if not self._address_chunks:
            return Trace.empty(name=self.name)
        return Trace(
            np.concatenate(self._address_chunks),
            np.concatenate(self._type_chunks),
            np.concatenate(self._size_chunks),
            name=self.name,
        )
