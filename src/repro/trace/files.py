"""Format- and compression-aware trace file loading.

One entry point, :func:`load_trace_file`, shared by every surface that
accepts a trace *path* — the CLI commands and the service daemon — so all of
them agree on format detection (``.din`` vs hex/CSV text), transparent
``.gz`` decompression, trace naming and error reporting.
"""

from __future__ import annotations

import gzip
import os
from typing import Union

from repro.errors import TraceError
from repro.trace.din import read_din
from repro.trace.textio import read_text_trace
from repro.trace.trace import Trace


def load_trace_file(path: Union[str, os.PathLike]) -> Trace:
    """Load a ``.din``/CSV/hex trace, transparently decompressing ``.gz`` files.

    The trace is named after the file's basename (extension stripped), so
    reports and result rows carry a human-readable workload label.
    Unreadable or missing files raise :class:`~repro.errors.TraceError` with
    a one-line message instead of a traceback.
    """
    path = os.fspath(path)
    compressed = path.endswith(".gz")
    stem = path[:-3] if compressed else path
    opener = gzip.open if compressed else open
    try:
        with opener(path, "rt", encoding="ascii") as handle:
            trace = read_din(handle) if stem.endswith(".din") else read_text_trace(handle)
    except FileNotFoundError:
        raise TraceError(f"trace file not found: {path}") from None
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceError(f"could not read trace file {path}: {exc}") from exc
    name = os.path.splitext(os.path.basename(stem))[0]
    return trace.with_name(name) if name else trace
