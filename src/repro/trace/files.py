"""Format- and compression-aware trace file loading.

One entry point, :func:`load_trace_file`, shared by every surface that
accepts a trace *path* — the CLI commands and the service daemon — so all of
them agree on format detection (``.din`` vs hex/CSV text), transparent
``.gz`` decompression, trace naming and error reporting.

When a :class:`~repro.trace.planecache.TracePlaneCache` (or anything with
its sidecar API) is passed as ``cache``, the loader memoizes the trace's
content fingerprint across processes: a warm load seeds
:meth:`~repro.trace.trace.Trace.fingerprint` from the ``(path, mtime, size)``
sidecar and skips the full-array hash; a cold load computes the fingerprint
once and records the sidecar for every later consumer (the submitting
client, each daemon in a fleet, the next CLI invocation).

The module also counts text parses (:func:`decode_count`): every call that
actually reads and parses a trace file increments a process-wide counter,
which is what lets CI assert that a warm, plane-cached sweep performed
*zero* text parses.
"""

from __future__ import annotations

import gzip
import os
from typing import Optional, Union

from repro.errors import TraceError
from repro.trace.din import read_din
from repro.trace.textio import read_text_trace
from repro.trace.trace import Trace

_decode_count = 0


def decode_count() -> int:
    """Number of trace-file text parses this process has performed."""
    return _decode_count


def trace_name_for_path(path: Union[str, os.PathLike]) -> str:
    """The reporting name a trace loaded from ``path`` would carry.

    Basename with the extension (and any ``.gz``) stripped — exposed so the
    service daemon can label plane-cache results identically to a real load
    without performing one.
    """
    path = os.fspath(path)
    stem = path[:-3] if path.endswith(".gz") else path
    return os.path.splitext(os.path.basename(stem))[0]


def load_trace_file(
    path: Union[str, os.PathLike], cache: Optional[object] = None
) -> Trace:
    """Load a ``.din``/CSV/hex trace, transparently decompressing ``.gz`` files.

    The trace is named after the file's basename (extension stripped), so
    reports and result rows carry a human-readable workload label.
    Unreadable or missing files raise :class:`~repro.errors.TraceError` with
    a one-line message instead of a traceback.

    ``cache`` (a :class:`~repro.trace.planecache.TracePlaneCache`) enables
    the fingerprint sidecar: on a sidecar hit the loaded trace's fingerprint
    memo is seeded without hashing; on a miss the fingerprint is computed
    eagerly — off the arrays just parsed — and recorded for the next loader.
    """
    global _decode_count
    path = os.fspath(path)
    compressed = path.endswith(".gz")
    stem = path[:-3] if compressed else path
    opener = gzip.open if compressed else open
    try:
        with opener(path, "rt", encoding="ascii") as handle:
            _decode_count += 1
            trace = read_din(handle) if stem.endswith(".din") else read_text_trace(handle)
    except FileNotFoundError:
        raise TraceError(f"trace file not found: {path}") from None
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceError(f"could not read trace file {path}: {exc}") from exc
    name = os.path.splitext(os.path.basename(stem))[0]
    trace = trace.with_name(name) if name else trace
    if cache is not None:
        known = cache.cached_fingerprint(path)
        if known is not None:
            trace.seed_fingerprint(known)
        else:
            cache.record_fingerprint(path, trace.fingerprint())
    return trace
