"""Trace filtering and splitting utilities.

The paper feeds unified SimpleScalar traces to both simulators; in practice
one often wants to simulate instruction and data caches separately, restrict
simulation to a window, or deduplicate consecutive accesses to the same block
(the CRCB-style pre-filter).  These helpers produce new :class:`Trace`
objects and never mutate their inputs.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import TraceError
from repro.trace.trace import Trace
from repro.types import AccessType


def filter_by_type(trace: Trace, access_types: Iterable[AccessType]) -> Trace:
    """Keep only accesses whose type is in ``access_types``."""
    wanted = {int(t) for t in access_types}
    if not wanted:
        raise TraceError("filter_by_type requires at least one access type")
    mask = np.isin(trace.access_types, list(wanted))
    return Trace(
        trace.addresses[mask],
        trace.access_types[mask],
        trace.sizes[mask],
        name=f"{trace.name}[filtered]",
    )


def split_instruction_data(trace: Trace) -> Tuple[Trace, Trace]:
    """Split a unified trace into (instruction trace, data trace)."""
    instruction = filter_by_type(trace, [AccessType.INSTR_FETCH]).with_name(f"{trace.name}.I")
    data = filter_by_type(trace, [AccessType.READ, AccessType.WRITE]).with_name(f"{trace.name}.D")
    return instruction, data


def window(trace: Trace, start: int, length: int) -> Trace:
    """Return ``length`` accesses beginning at index ``start``."""
    if start < 0 or length < 0:
        raise TraceError("window start and length must be non-negative")
    sliced = trace[start : start + length]
    assert isinstance(sliced, Trace)
    return sliced.with_name(f"{trace.name}[{start}:{start + length}]")


def unique_block_trace(trace: Trace, block_size: int) -> Trace:
    """Drop accesses that hit the same block as the immediately preceding one.

    This is the pre-filter used by the CRCB family of optimisations: two
    consecutive accesses to the same block behave identically in every cache
    of at least that block size, so only the first needs full simulation.
    Note that hit/miss *counts* change after filtering; the filtered trace is
    meant for search-effort studies, not exact miss-rate reporting.
    """
    if len(trace) == 0:
        return trace
    blocks = trace.block_addresses(block_size)
    keep = np.ones(len(trace), dtype=bool)
    keep[1:] = blocks[1:] != blocks[:-1]
    return Trace(
        trace.addresses[keep],
        trace.access_types[keep],
        trace.sizes[keep],
        name=f"{trace.name}[uniq{block_size}]",
    )
