"""Content-addressed on-disk cache of decoded trace planes.

Every sweep surface — ``repro-dew sweep``, ``submit``, the service daemons —
historically re-paid the same two costs per run over the same trace file: the
text parse (``.din``/CSV/hex to packed arrays) and the decode (per-block-size
shifts plus the chunk-faithful run-length collapse).  The shared-memory plane
(:mod:`repro.engine.shmplane`) removed the *per-worker* copy of that cost
within one sweep; this module removes it *across* runs and processes: the
first sweep over a trace decodes once and persists the plane, every later
sweep — in any process, on any daemon sharing the cache directory —
``mmap``-attaches the artifact and never touches the text file again.

This is the result store's idea applied one level down.  The layout mirrors
:mod:`repro.store.resultstore` deliberately::

    <root>/planecache.json                  {"schema": 1, "format": "trace-plane"}
    <root>/objects/<d[:2]>/<d>.plane        one decoded plane, d = key digest
    <root>/fingerprints/<p[:2]>/<p>.json    trace-fingerprint sidecars,
                                            p = sha256(absolute trace path)

An artifact is addressed by :class:`PlaneKey` — the SHA-256 of ``(trace
fingerprint, chunk size, collapse flag, decode requirements)`` — so two job
grids with the same decode plan share one artifact, and a changed trace can
never alias a stale plane.  The same durability rules as the store apply:
writes go through the atomic temp-plus-``os.replace`` primitive, corruption
(bad magic, unknown schema, truncation, mismatched digest) is treated as a
miss and overwritten by the next put, and concurrent writers race benignly
(both produce byte-identical content; ``os.replace`` is atomic).

**Artifact format.**  ``numpy``'s ``.npz`` cannot be memory-mapped (members
sit inside a zip), so the plane artifact is a flat file with the same
spirit: a magic preamble, an ASCII JSON header (schema version, plane key,
array directory, payload SHA-256) and the raw array bytes, each array
starting on a 64-byte-aligned offset.  Attaching validates only the header
and the total size, then maps the file read-only — a warm sweep faults in
only the pages it actually walks (``mmap_mode="r"`` semantics), and the
payload hash is re-checked by the explicit ``trace cache verify`` pass, the
exact get-vs-verify split the result store uses.

**Fingerprint sidecars.**  Hashing a multi-million-access trace to compute
its content fingerprint costs a full pass over the arrays.  The cache keeps
one tiny JSON sidecar per trace *path*, validated by ``(path, mtime_ns,
size)``: a warm submission or daemon job reads the fingerprint from the
sidecar and skips the hash (and, with a cached plane, the entire load).
Sidecars are only ever written from fingerprints computed off the actual
file contents, so a stale sidecar requires an mtime-and-size-preserving
in-place rewrite — the standard build-system staleness tradeoff.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.shmplane import (
    ArraySpec,
    DecodeRequirements,
    PlaneLayout,
    _PlaneView,
    build_plane_arrays,
    decode_requirements,
    layout_plane_arrays,
    plane_arrays_from_source,
)
from repro.errors import StoreError
from repro.obs.metrics import component_snapshot, get_registry
from repro.store.manage import (
    STATUS_CORRUPT,
    STATUS_FOREIGN,
    STATUS_MIS_ADDRESSED,
    STATUS_OK,
    STATUS_TEMP,
    STREAM_CHUNK_BYTES,
    ArtifactRecord,
    GcReport,
    VerifyReport,
    _DIGEST_RE,
    collect_garbage,
)
from repro.store.resultstore import _atomic_replace
from repro.trace.trace import DEFAULT_CHUNK_SIZE, Trace

#: Version of the cache directory layout and plane artifact envelope.
PLANE_SCHEMA_VERSION = 1

#: Artifact schema versions this build can attach; unknown versions are
#: treated as a miss (mirroring the ResultsFrame readable-schemas idiom), so
#: a cache shared between builds degrades to re-decoding, never to misreads.
_READABLE_SCHEMAS = (1,)

_MANIFEST_NAME = "planecache.json"
_OBJECTS_DIR = "objects"
_FINGERPRINTS_DIR = "fingerprints"
_PLANE_SUFFIX = ".plane"

#: Artifact preamble: 12 magic bytes then a little-endian uint32 header size.
_MAGIC = b"REPROPLANE1\n"
_PREAMBLE = struct.Struct("<12sI")

#: Headers beyond this are corrupt by definition (a real header is ~1 KiB).
_MAX_HEADER_BYTES = 1 << 24

#: Payload bytes start on the first 64-byte boundary past the header, so
#: every array offset inherits the shared plane's cache-line alignment.
_PAYLOAD_ALIGN = 64


def _align(value: int) -> int:
    return (value + _PAYLOAD_ALIGN - 1) // _PAYLOAD_ALIGN * _PAYLOAD_ALIGN


@dataclass(frozen=True)
class PlaneKey:
    """Content address of one decoded plane.

    Identity is the trace's content fingerprint plus everything that shapes
    the decoded arrays: the chunk geometry, whether runs were collapsed, the
    block-size shift set, the run-carrying shift set and whether access
    types ride along.  Nothing positional (no paths, no timestamps) — the
    same trace content under any filename reuses one artifact.
    """

    fingerprint: str
    chunk_size: int
    collapse: bool
    offsets: Tuple[int, ...]
    runs_offsets: Tuple[int, ...]
    needs_types: bool

    @classmethod
    def from_plan(
        cls,
        fingerprint: str,
        plan: DecodeRequirements,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        collapse: bool = True,
    ) -> "PlaneKey":
        """Build a key from an already-derived decode plan."""
        collapse = bool(collapse)
        return cls(
            fingerprint=str(fingerprint),
            chunk_size=max(int(chunk_size), 1),
            collapse=collapse,
            offsets=tuple(int(o) for o in plan.offsets),
            runs_offsets=tuple(int(o) for o in plan.runs_offsets) if collapse else (),
            needs_types=bool(plan.needs_types),
        )

    @classmethod
    def make(
        cls,
        fingerprint: str,
        jobs: Sequence,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        collapse: bool = True,
    ) -> "PlaneKey":
        """Build a key for a job list (derives the decode plan from it)."""
        return cls.from_plan(
            fingerprint, decode_requirements(jobs), chunk_size, collapse
        )

    def plan(self) -> DecodeRequirements:
        """The decode requirements this key pins."""
        return DecodeRequirements(
            offsets=self.offsets,
            runs_offsets=self.runs_offsets,
            needs_types=self.needs_types,
        )

    @property
    def digest(self) -> str:
        """SHA-256 hex digest addressing this key's artifact."""
        payload = json.dumps(
            {
                "schema": PLANE_SCHEMA_VERSION,
                "trace": self.fingerprint,
                "chunk_size": self.chunk_size,
                "collapse": self.collapse,
                "offsets": list(self.offsets),
                "runs_offsets": list(self.runs_offsets),
                "types": self.needs_types,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def describe(self) -> Dict[str, object]:
        """JSON-able key description embedded into artifacts for integrity."""
        return {
            "digest": self.digest,
            "fingerprint": self.fingerprint,
            "chunk_size": self.chunk_size,
            "collapse": self.collapse,
            "offsets": list(self.offsets),
            "runs_offsets": list(self.runs_offsets),
            "needs_types": self.needs_types,
        }

    @classmethod
    def from_description(cls, info: Dict[str, object]) -> "PlaneKey":
        """Rebuild a key from an artifact header's embedded description."""
        return cls(
            fingerprint=str(info.get("fingerprint", "")),
            chunk_size=max(int(info.get("chunk_size", DEFAULT_CHUNK_SIZE)), 1),
            collapse=bool(info.get("collapse", True)),
            offsets=tuple(int(o) for o in info.get("offsets", ())),
            runs_offsets=tuple(int(o) for o in info.get("runs_offsets", ())),
            needs_types=bool(info.get("needs_types", False)),
        )


class _FileSegment:
    """Read-only mmap of a plane artifact behind the shm segment interface.

    Exposes exactly what :class:`~repro.engine.shmplane._PlaneView` needs —
    ``buf`` (a buffer the numpy views are built over) and ``close()`` — so
    the file-backed plane reuses the shared-memory view logic unchanged.
    The mapping is ``ACCESS_READ``: the kernel faults pages in lazily as the
    executor walks them, and any write through a view raises.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        with open(path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.buf: Optional[memoryview] = memoryview(self._mmap)

    def close(self) -> None:
        buf, self.buf = self.buf, None
        try:
            if buf is not None:
                buf.release()
            self._mmap.close()
        except BufferError:  # pragma: no cover - a caller leaked a view
            # The mapping stays until process exit; the unlinked artifact's
            # disk space is reclaimed regardless.
            pass


@dataclass(frozen=True)
class CachedPlaneDescriptor:
    """Everything a pool worker needs to re-attach a cached plane.

    The file-backed analogue of shipping a :class:`PlaneLayout` for a shared
    segment: a few hundred pickled bytes instead of the trace, and every
    worker's private mapping shares one page-cache copy of the artifact.
    """

    path: str
    layout: PlaneLayout
    key: PlaneKey


class CachedPlane(_PlaneView):
    """A read-only mmap attachment of one cached plane artifact.

    A drop-in :class:`~repro.engine.shmplane.TraceChunkSource`: the fused
    executor walks it exactly as it walks a shared segment or an in-process
    trace.  It additionally carries the decoded trace's content fingerprint,
    so ``run_sweep`` and the service daemon can key the result store — and
    skip loading the trace entirely — from the plane alone.
    """

    def __init__(
        self,
        layout: PlaneLayout,
        segment: _FileSegment,
        path: Union[str, os.PathLike],
        key: PlaneKey,
    ) -> None:
        super().__init__(layout, segment)
        self.path = Path(path)
        self.key = key

    def fingerprint(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> str:
        """The cached trace's content digest (no hashing — it rode the key)."""
        return self.key.fingerprint

    def descriptor(self) -> CachedPlaneDescriptor:
        """The compact re-attach descriptor to ship to pool workers."""
        return CachedPlaneDescriptor(
            path=str(self.path), layout=self.layout, key=self.key
        )

    @classmethod
    def attach(cls, descriptor: CachedPlaneDescriptor) -> "CachedPlane":
        """Worker-side re-attach from a descriptor (raises StoreError)."""
        try:
            segment = _FileSegment(descriptor.path)
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"could not attach cached trace plane {descriptor.path}: {exc}"
            ) from exc
        return cls(descriptor.layout, segment, descriptor.path, descriptor.key)

    def close(self) -> None:
        super().close()

    def __enter__(self) -> "CachedPlane":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _read_header(path: Path) -> Tuple[Dict[str, object], int, int]:
    """Parse an artifact's preamble and JSON header.

    Returns ``(header, payload_base, file_size)``; raises
    :class:`~repro.errors.StoreError` on any malformation.  Unknown *extra*
    header fields and arrays are tolerated (forward compatibility within a
    readable schema); unknown schema versions are not.
    """
    try:
        with open(path, "rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) != _PREAMBLE.size:
                raise StoreError(f"plane artifact {path} is truncated")
            magic, header_bytes = _PREAMBLE.unpack(preamble)
            if magic != _MAGIC:
                raise StoreError(f"plane artifact {path} has a bad magic preamble")
            if not 0 < header_bytes <= _MAX_HEADER_BYTES:
                raise StoreError(
                    f"plane artifact {path} declares an implausible header size"
                )
            blob = handle.read(header_bytes)
            if len(blob) != header_bytes:
                raise StoreError(f"plane artifact {path} is truncated")
            file_size = os.fstat(handle.fileno()).st_size
    except FileNotFoundError:
        # Absence is a plain miss, never corruption — let the caller count it.
        raise
    except OSError as exc:
        raise StoreError(f"could not read plane artifact {path}: {exc}") from exc
    try:
        header = json.loads(blob.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise StoreError(f"plane artifact {path} has a malformed header: {exc}") from exc
    if not isinstance(header, dict):
        raise StoreError(f"plane artifact {path} has a malformed header")
    schema = header.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise StoreError(
            f"plane artifact {path} uses schema {schema!r}; "
            f"this build reads versions {_READABLE_SCHEMAS}"
        )
    payload_base = _align(_PREAMBLE.size + header_bytes)
    try:
        payload_bytes = int(header["payload_bytes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"plane artifact {path} has a malformed header") from exc
    if file_size != payload_base + payload_bytes:
        raise StoreError(
            f"plane artifact {path} is {file_size} bytes; header promises "
            f"{payload_base + payload_bytes}"
        )
    return header, payload_base, file_size


def _layout_from_header(
    path: Path,
    header: Dict[str, object],
    payload_base: int,
    file_size: int,
    trace_name: Optional[str],
) -> Tuple[PlaneLayout, PlaneKey]:
    """Turn a validated header into an attachable layout (bounds-checked)."""
    try:
        key = PlaneKey.from_description(header.get("key", {}))
        specs: List[ArraySpec] = []
        for entry in header["arrays"]:
            spec = ArraySpec(
                key=str(entry["key"]),
                dtype=str(entry["dtype"]),
                shape=tuple(int(axis) for axis in entry["shape"]),
                offset=payload_base + int(entry["offset"]),
            )
            nbytes = int(np.dtype(spec.dtype).itemsize)
            for axis in spec.shape:
                nbytes *= axis
            if spec.offset < payload_base or spec.offset + nbytes > file_size:
                raise StoreError(
                    f"plane artifact {path} array {spec.key!r} exceeds the file"
                )
            specs.append(spec)
        layout = PlaneLayout(
            segment=str(path),
            trace_name=(
                str(trace_name)
                if trace_name is not None
                else str(header.get("trace_name", "trace"))
            ),
            length=int(header["length"]),
            chunk_size=key.chunk_size,
            collapse=key.collapse,
            arrays=tuple(specs),
            total_bytes=file_size,
        )
    except StoreError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"plane artifact {path} has a malformed header") from exc
    return layout, key


class TracePlaneCache:
    """A directory of content-addressed decoded-plane artifacts.

    Construct via :func:`open_plane_cache`.  Lookup statistics (``hits``,
    ``misses``, ``corrupt``, ``puts`` plus the sidecar split) accumulate per
    instance — the service daemon surfaces them through its heartbeat so
    ``queue stats`` can show how much decoding the fleet skipped.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.hit_count = 0
        self.miss_count = 0
        self.corrupt_count = 0
        self.put_count = 0
        self.sidecar_hit_count = 0
        self.sidecar_miss_count = 0
        # Process-wide named instruments alongside the per-instance ints:
        # the registry totals ride daemon heartbeats for fleet aggregation.
        registry = get_registry()
        self._metric_hits = registry.counter(
            "plane_cache_hits_total", "decoded planes attached from the cache"
        )
        self._metric_misses = registry.counter(
            "plane_cache_misses_total", "plane lookups with no artifact"
        )
        self._metric_corrupt = registry.counter(
            "plane_cache_corrupt_total", "unreadable plane artifacts (read as misses)"
        )
        self._metric_puts = registry.counter(
            "plane_cache_puts_total", "decoded planes persisted"
        )
        self._metric_sidecar_hits = registry.counter(
            "plane_cache_sidecar_hits_total", "fingerprints served from sidecars"
        )
        self._metric_sidecar_misses = registry.counter(
            "plane_cache_sidecar_misses_total", "fingerprint sidecar misses"
        )

    # -- accounting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Lookup/write accounting accumulated by this instance."""
        return {
            "hits": self.hit_count,
            "misses": self.miss_count,
            "corrupt": self.corrupt_count,
            "puts": self.put_count,
            "sidecar_hits": self.sidecar_hit_count,
            "sidecar_misses": self.sidecar_miss_count,
        }

    def snapshot(self) -> Dict[str, Any]:
        """The unified per-component stats shape (see
        :func:`repro.obs.metrics.component_snapshot`); ``counters`` carries
        exactly the legacy :meth:`stats` keys."""
        return component_snapshot("trace_plane_cache", self.stats())

    # -- addressing -----------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / _OBJECTS_DIR

    def path_for(self, key: Union[PlaneKey, str]) -> Path:
        """Filesystem path of the artifact addressed by ``key`` (or digest)."""
        digest = key if isinstance(key, str) else key.digest
        return self.objects_dir / digest[:2] / (digest + _PLANE_SUFFIX)

    def contains(self, key: PlaneKey) -> bool:
        """Whether an artifact exists under ``key`` (without validating it)."""
        return self.path_for(key).is_file()

    __contains__ = contains

    def artifact_paths(self) -> List[Path]:
        """All plane artifacts currently in the cache (sorted, deterministic)."""
        objects = self.objects_dir
        if not objects.is_dir():
            return []
        return [
            path
            for path in sorted(objects.glob("*/*" + _PLANE_SUFFIX))
            if not path.name.startswith(".")
        ]

    def __len__(self) -> int:
        return len(self.artifact_paths())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracePlaneCache({str(self.root)!r}, {len(self)} planes)"

    # -- read/write -----------------------------------------------------------

    def _attach(self, key: PlaneKey, trace_name: Optional[str]) -> CachedPlane:
        """Header-validate and mmap the artifact for ``key`` (may raise)."""
        path = self.path_for(key)
        header, payload_base, file_size = _read_header(path)
        embedded = header.get("key", {})
        if not isinstance(embedded, dict) or embedded.get("digest") != key.digest:
            raise StoreError(
                f"plane artifact {path} embeds a different key than its address"
            )
        layout, _ = _layout_from_header(
            path, header, payload_base, file_size, trace_name
        )
        segment = _FileSegment(path)
        return CachedPlane(layout, segment, path, key)

    def get(
        self, key: PlaneKey, trace_name: Optional[str] = None
    ) -> Optional[CachedPlane]:
        """Attach the cached plane for ``key``, or ``None`` on miss.

        Corruption of any kind — bad magic, unknown schema, truncation, a
        key that does not match the address — counts in ``corrupt_count``
        and reads as a miss; the caller re-decodes and the next put
        overwrites the bad artifact.  ``trace_name`` overrides the stored
        reporting name (the artifact is shared by every path holding the
        same content, so the caller's basename wins over the writer's).
        """
        try:
            plane = self._attach(key, trace_name)
        except FileNotFoundError:
            self.miss_count += 1
            self._metric_misses.inc()
            return None
        except (StoreError, OSError, ValueError):
            self.corrupt_count += 1
            self._metric_corrupt.inc()
            return None
        self.hit_count += 1
        self._metric_hits.inc()
        return plane

    def put(
        self,
        key: PlaneKey,
        trace: Optional[Trace] = None,
        source: Optional[_PlaneView] = None,
    ) -> Path:
        """Decode and persist the plane for ``key`` atomically; returns the path.

        Exactly one of ``trace`` (decode from arrays) or ``source`` (copy
        from an already-decoded plane view) must be given.  Concurrent
        writers race benignly: both temp files hold byte-identical payloads
        and ``os.replace`` installs whichever finishes last.
        """
        if (trace is None) == (source is None):
            raise StoreError("plane cache put needs a trace or a plane source")
        if source is not None:
            arrays = plane_arrays_from_source(
                source, key.plan(), key.chunk_size, key.collapse
            )
            trace_name = source.trace_name
        else:
            arrays = build_plane_arrays(trace, key.plan(), key.chunk_size, key.collapse)
            trace_name = trace.name
        specs, payload_bytes = layout_plane_arrays(arrays)

        contiguous = [np.ascontiguousarray(array) for _, array in arrays]
        digest = hashlib.sha256()
        cursor = 0
        for spec, array in zip(specs, contiguous):
            digest.update(b"\0" * (spec.offset - cursor))
            digest.update(array.data.cast("B"))
            cursor = spec.offset + array.nbytes

        header = {
            "schema": PLANE_SCHEMA_VERSION,
            "key": key.describe(),
            "trace_name": trace_name,
            "length": int(arrays[0][1].size),
            "arrays": [
                {
                    "key": spec.key,
                    "dtype": spec.dtype,
                    "shape": list(spec.shape),
                    "offset": spec.offset,
                }
                for spec in specs
            ],
            "payload_bytes": payload_bytes,
            "payload_sha256": digest.hexdigest(),
        }
        blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("ascii")
        payload_base = _align(_PREAMBLE.size + len(blob))

        def write(handle) -> None:
            handle.write(_PREAMBLE.pack(_MAGIC, len(blob)))
            handle.write(blob)
            handle.write(b"\0" * (payload_base - _PREAMBLE.size - len(blob)))
            position = 0
            for spec, array in zip(specs, contiguous):
                handle.write(b"\0" * (spec.offset - position))
                handle.write(array.data.cast("B"))
                position = spec.offset + array.nbytes

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_replace(path, write, prefix=".tmp-" + key.digest[:8] + "-")
        self.put_count += 1
        self._metric_puts.inc()
        return path

    def ensure(
        self,
        trace: Trace,
        jobs: Sequence,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        collapse: bool = True,
    ) -> CachedPlane:
        """Attach the plane for ``(trace, jobs)``, decoding and caching on miss."""
        key = PlaneKey.make(trace.fingerprint(), jobs, chunk_size, collapse)
        plane = self.get(key, trace_name=trace.name)
        if plane is not None:
            return plane
        self.put(key, trace=trace)
        return self._attach(key, trace.name)

    # -- fingerprint sidecars -------------------------------------------------

    def _sidecar_path(self, trace_path: Union[str, os.PathLike]) -> Path:
        digest = hashlib.sha256(
            os.path.abspath(os.fspath(trace_path)).encode("utf-8")
        ).hexdigest()
        return self.root / _FINGERPRINTS_DIR / digest[:2] / (digest + ".json")

    def cached_fingerprint(
        self, trace_path: Union[str, os.PathLike]
    ) -> Optional[str]:
        """The trace file's fingerprint, if a sidecar matches its stat identity.

        Validated against the file's current ``(mtime_ns, size)``; any
        mismatch, missing sidecar or unreadable payload is a (counted) miss.
        """
        try:
            stat = os.stat(trace_path)
            payload = json.loads(
                self._sidecar_path(trace_path).read_text(encoding="utf-8")
            )
            if (
                int(payload["mtime_ns"]) == stat.st_mtime_ns
                and int(payload["size"]) == stat.st_size
            ):
                fingerprint = str(payload["fingerprint"])
                if _DIGEST_RE.match(fingerprint):
                    self.sidecar_hit_count += 1
                    self._metric_sidecar_hits.inc()
                    return fingerprint
        except (OSError, ValueError, KeyError, TypeError):
            pass
        self.sidecar_miss_count += 1
        self._metric_sidecar_misses.inc()
        return None

    def record_fingerprint(
        self, trace_path: Union[str, os.PathLike], fingerprint: str
    ) -> None:
        """Persist a sidecar binding the file's stat identity to ``fingerprint``.

        Only call with a fingerprint computed from the file's actual
        contents (``load_trace_file`` does); best-effort — a failed write
        just means the next run hashes again.
        """
        try:
            stat = os.stat(trace_path)
        except OSError:
            return
        payload = {
            "schema": 1,
            "path": os.path.abspath(os.fspath(trace_path)),
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "fingerprint": str(fingerprint),
        }
        sidecar = self._sidecar_path(trace_path)
        try:
            sidecar.parent.mkdir(parents=True, exist_ok=True)
            _atomic_replace(
                sidecar,
                lambda handle: json.dump(payload, handle, sort_keys=True),
                mode="w",
                prefix=".tmp-sidecar-",
            )
        except (OSError, StoreError):
            pass


def open_plane_cache(path: Union[str, os.PathLike]) -> TracePlaneCache:
    """Open (creating if necessary) the plane cache rooted at ``path``.

    The root gains a ``planecache.json`` manifest recording the schema
    version; re-opening a cache written by an incompatible build raises
    :class:`~repro.errors.StoreError` instead of misreading it.
    """
    root = Path(path)
    manifest_path = root / _MANIFEST_NAME
    try:
        (root / _OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise StoreError(f"could not create trace plane cache at {root}: {exc}") from exc
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"unreadable plane cache manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != PLANE_SCHEMA_VERSION:
            raise StoreError(
                f"trace plane cache at {root} uses schema {manifest.get('schema')!r}; "
                f"this build reads version {PLANE_SCHEMA_VERSION}"
            )
    else:
        manifest = {"schema": PLANE_SCHEMA_VERSION, "format": "trace-plane"}
        _atomic_replace(
            manifest_path,
            lambda handle: json.dump(manifest, handle, sort_keys=True),
            mode="w",
            prefix=".tmp-manifest-",
        )
    return TracePlaneCache(root)


def coerce_plane_cache(
    value: Union[None, bool, str, os.PathLike, TracePlaneCache]
) -> Optional[TracePlaneCache]:
    """Normalize the ``trace_cache`` argument every consumer accepts.

    ``None``/``False`` disable the cache; an open cache passes through; a
    path opens (creating) a cache there.
    """
    if value is None or value is False:
        return None
    if isinstance(value, TracePlaneCache):
        return value
    if value is True:
        raise StoreError("trace_cache=True needs a directory; pass a path")
    return open_plane_cache(value)


# -- management (ls / verify / gc) ---------------------------------------------
#
# These reuse the result store's operator vocabulary wholesale: the same
# ArtifactRecord/VerifyReport/GcReport types, the same status constants and
# the same eviction policy, so `trace cache verify/gc` behaves exactly like
# `store verify/gc` with a different artifact parser.


def _payload_sha256(path: Path, offset: int) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        handle.seek(offset)
        for block in iter(lambda: handle.read(STREAM_CHUNK_BYTES), b""):
            digest.update(block)
    return digest.hexdigest()


def _classify_plane(path: Path, size: int) -> ArtifactRecord:
    """Fully re-verify one digest-named ``.plane`` file."""
    stem = path.name[: -len(_PLANE_SUFFIX)]
    try:
        header, payload_base, _file_size = _read_header(path)
        key = PlaneKey.from_description(header.get("key", {}))
        embedded_digest = str(header.get("key", {}).get("digest", ""))
        expected_sha = str(header.get("payload_sha256", ""))
        rows = len(header.get("arrays", []))
    except (StoreError, OSError) as exc:
        return ArtifactRecord(
            path=path, status=STATUS_CORRUPT, size_bytes=size, digest=stem,
            detail=f"unreadable artifact: {exc}",
        )
    actual_sha = _payload_sha256(path, payload_base)
    if actual_sha != expected_sha:
        return ArtifactRecord(
            path=path, status=STATUS_CORRUPT, size_bytes=size, digest=stem,
            trace_fingerprint=key.fingerprint,
            detail=(
                f"payload hash mismatch (header {expected_sha[:12]}..., "
                f"re-hashed {actual_sha[:12]}...)"
            ),
        )
    rehashed = key.digest
    if embedded_digest != stem or rehashed != stem:
        return ArtifactRecord(
            path=path, status=STATUS_MIS_ADDRESSED, size_bytes=size, digest=stem,
            trace_fingerprint=key.fingerprint, rows=rows,
            detail=(
                f"address {stem[:12]}... does not match embedded key "
                f"(embedded {embedded_digest[:12]}..., re-hashed {rehashed[:12]}...)"
            ),
        )
    return ArtifactRecord(
        path=path, status=STATUS_OK, size_bytes=size, digest=stem,
        engine="plane", trace_fingerprint=key.fingerprint, rows=rows,
    )


def scan_plane_cache(cache: TracePlaneCache) -> List[ArtifactRecord]:
    """Classify every file under the cache root (sorted, deterministic).

    The cache manifest and the fingerprint sidecars are the cache's own
    bookkeeping (neither artifacts nor foreign junk); everything else is
    classified ok/corrupt/mis-addressed/temp/foreign exactly as
    :func:`repro.store.manage.scan_store` does for result artifacts.
    """
    root = cache.root
    objects = cache.objects_dir
    sidecars = root / _FINGERPRINTS_DIR
    records: List[ArtifactRecord] = []
    for path in sorted(p for p in root.rglob("*") if p.is_file()):
        if path == root / _MANIFEST_NAME:
            continue
        if sidecars in path.parents:
            continue
        size = path.stat().st_size
        if path.name.startswith(".tmp-"):
            records.append(ArtifactRecord(
                path=path, status=STATUS_TEMP, size_bytes=size,
                detail="orphaned in-flight write",
            ))
            continue
        in_bucket = (
            path.parent.parent == objects
            and path.name.endswith(_PLANE_SUFFIX)
            and _DIGEST_RE.match(path.name[: -len(_PLANE_SUFFIX)]) is not None
            and path.parent.name == path.name[:2]
        )
        if not in_bucket:
            records.append(ArtifactRecord(
                path=path, status=STATUS_FOREIGN, size_bytes=size,
                detail="not a plane artifact",
            ))
            continue
        records.append(_classify_plane(path, size))
    return records


def verify_plane_cache(cache: TracePlaneCache) -> VerifyReport:
    """Re-read every artifact, re-hash its payload and re-derive its address."""
    return VerifyReport(records=tuple(scan_plane_cache(cache)))


def gc_plane_cache(
    cache: TracePlaneCache,
    keep_fingerprints=None,
    dry_run: bool = False,
    max_bytes: Optional[int] = None,
) -> GcReport:
    """Collect garbage (and, with a keep-list, other traces') planes.

    Semantics are identical to :func:`repro.store.manage.gc_store` — temp,
    corrupt and mis-addressed files always go; ``keep_fingerprints`` are
    prefixes of trace fingerprints; ``max_bytes`` evicts valid planes
    oldest-modification-time-first; foreign files are never touched.  An
    evicted plane is only a cache loss: the next sweep re-decodes it.
    """
    return collect_garbage(
        scan_plane_cache(cache),
        cache.objects_dir,
        keep_fingerprints=keep_fingerprints,
        dry_run=dry_run,
        max_bytes=max_bytes,
    )
