"""Trace-level statistics.

These statistics characterise *why* a given workload benefits (or not) from
DEW's shortcuts: a high fraction of immediately-repeated block accesses feeds
Property 2 (MRA), while a compact working set keeps wave pointers valid for
longer (Property 3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.trace.trace import Trace
from repro.types import AccessType


@dataclass
class TraceStatistics:
    """Summary statistics of a trace at a particular block size."""

    name: str
    length: int
    block_size: int
    unique_blocks: int
    repeat_block_fraction: float
    read_fraction: float
    write_fraction: float
    ifetch_fraction: float
    address_span: int
    mean_reuse_distance: float
    reuse_distance_histogram: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view (convenient for CSV/JSON reporting)."""
        return {
            "name": self.name,
            "length": self.length,
            "block_size": self.block_size,
            "unique_blocks": self.unique_blocks,
            "repeat_block_fraction": self.repeat_block_fraction,
            "read_fraction": self.read_fraction,
            "write_fraction": self.write_fraction,
            "ifetch_fraction": self.ifetch_fraction,
            "address_span": self.address_span,
            "mean_reuse_distance": self.mean_reuse_distance,
        }


def reuse_distances(block_addresses: np.ndarray) -> List[int]:
    """Per-access LRU stack distance over block addresses.

    The distance of an access is the number of *distinct* blocks referenced
    since the previous access to the same block, or ``-1`` for a first-time
    (compulsory) access.  This simple O(n·d) stack implementation is intended
    for reporting on modest traces; the optimised engine lives in
    :mod:`repro.lru.stack`.
    """
    stack: List[int] = []
    result: List[int] = []
    for block in block_addresses.tolist():
        try:
            index = stack.index(block)
        except ValueError:
            stack.append(block)
            result.append(-1)
            continue
        result.append(len(stack) - index - 1)
        stack.pop(index)
        stack.append(block)
    return result


def compute_trace_statistics(trace: Trace, block_size: int = 32) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace`` at ``block_size`` bytes."""
    length = len(trace)
    if length == 0:
        return TraceStatistics(
            name=trace.name,
            length=0,
            block_size=block_size,
            unique_blocks=0,
            repeat_block_fraction=0.0,
            read_fraction=0.0,
            write_fraction=0.0,
            ifetch_fraction=0.0,
            address_span=0,
            mean_reuse_distance=0.0,
        )
    blocks = trace.block_addresses(block_size)
    repeats = int(np.count_nonzero(blocks[1:] == blocks[:-1])) if length > 1 else 0
    counts = Counter(trace.access_types.tolist())
    distances = reuse_distances(blocks)
    finite = [distance for distance in distances if distance >= 0]
    histogram: Dict[int, int] = dict(Counter(finite))
    return TraceStatistics(
        name=trace.name,
        length=length,
        block_size=block_size,
        unique_blocks=int(np.unique(blocks).size),
        repeat_block_fraction=repeats / max(length - 1, 1),
        read_fraction=counts.get(int(AccessType.READ), 0) / length,
        write_fraction=counts.get(int(AccessType.WRITE), 0) / length,
        ifetch_fraction=counts.get(int(AccessType.INSTR_FETCH), 0) / length,
        address_span=int(trace.addresses.max() - trace.addresses.min()),
        mean_reuse_distance=float(np.mean(finite)) if finite else 0.0,
        reuse_distance_histogram=histogram,
    )
